// Tests for the spec registry (Tables I/II) and the E870 topology
// (Figure 1): the paper's own headline numbers must fall out of the
// derived quantities.
#include <gtest/gtest.h>

#include "arch/spec.hpp"
#include "arch/topology.hpp"
#include "common/units.hpp"

namespace p8::arch {
namespace {

using common::kib;
using common::mib;

// -------------------------------------------------------------- Table I ----

TEST(Spec, Power7TableI) {
  const ProcessorSpec p = power7();
  EXPECT_EQ(p.core.smt_threads, 4);
  EXPECT_EQ(p.max_cores, 8);
  EXPECT_EQ(p.core.l1d_bytes, kib(32));
  EXPECT_EQ(p.core.l2_bytes, kib(256));
  EXPECT_EQ(p.core.l3_bytes, mib(4));
  EXPECT_EQ(p.max_l4_bytes, 0u);
  EXPECT_EQ(p.core.issue_width, 8);
  EXPECT_EQ(p.core.commit_width, 6);
  EXPECT_EQ(p.core.loads_per_cycle, 2);
  EXPECT_EQ(p.core.stores_per_cycle, 2);
}

TEST(Spec, Power8TableI) {
  const ProcessorSpec p = power8();
  EXPECT_EQ(p.core.smt_threads, 8);
  EXPECT_EQ(p.max_cores, 12);
  EXPECT_EQ(p.core.l1i_bytes, kib(32));
  EXPECT_EQ(p.core.l1d_bytes, kib(64));
  EXPECT_EQ(p.core.l2_bytes, kib(512));
  EXPECT_EQ(p.core.l3_bytes, mib(8));
  EXPECT_EQ(p.max_l4_bytes, mib(128));
  EXPECT_EQ(p.core.issue_width, 10);
  EXPECT_EQ(p.core.commit_width, 8);
  EXPECT_EQ(p.core.loads_per_cycle, 4);
  EXPECT_EQ(p.core.stores_per_cycle, 2);
  EXPECT_EQ(p.cache_line_bytes, 128u);
}

TEST(Spec, Power8DoublesPower7PerCoreCaches) {
  const auto p7 = power7();
  const auto p8v = power8();
  EXPECT_EQ(p8v.core.l1d_bytes, 2 * p7.core.l1d_bytes);
  EXPECT_EQ(p8v.core.l2_bytes, 2 * p7.core.l2_bytes);
  EXPECT_EQ(p8v.core.l3_bytes, 2 * p7.core.l3_bytes);
  EXPECT_EQ(p8v.core.smt_threads, 2 * p7.core.smt_threads);
}

TEST(Spec, Power8VsxGeometry) {
  const auto core = power8().core;
  EXPECT_EQ(core.vsx_pipes, 2);
  EXPECT_EQ(core.vsx_latency_cycles, 6);
  EXPECT_EQ(core.arch_vsx_registers, 128);
  EXPECT_EQ(core.dp_flops_per_cycle(), 8);  // 2 pipes x 2 lanes x FMA
}

// ---------------------------------------------- §II headline quantities ----

TEST(Spec, MaxSmpHeadlineNumbers) {
  const SystemSpec s = max_power8_smp();
  EXPECT_EQ(s.total_cores(), 192);
  // "6,144 GFLOP/s of double-precision performance"
  EXPECT_NEAR(s.peak_dp_gflops(), 6144.0, 1.0);
  // "3,686 GB/s memory throughput" (2:1 mix)
  EXPECT_NEAR(s.peak_mem_gbs(), 3686.0, 2.0);
  // "memory capacity of 16 TB"
  EXPECT_EQ(s.max_dram_bytes(), 16ull << 40);
}

TEST(Spec, CentaurLinkAsymmetry) {
  const CentaurSpec c;
  EXPECT_DOUBLE_EQ(c.read_link_gbs, 19.2);
  EXPECT_DOUBLE_EQ(c.write_link_gbs, 9.6);
  EXPECT_DOUBLE_EQ(c.read_link_gbs / c.write_link_gbs, 2.0);
  EXPECT_EQ(c.l4_bytes, mib(16));
}

// -------------------------------------------------------------- Table II ---

TEST(Spec, E870Configuration) {
  const SystemSpec s = e870();
  EXPECT_EQ(s.sockets, 8);
  EXPECT_EQ(s.total_chips(), 8);
  EXPECT_EQ(s.total_cores(), 64);
  EXPECT_EQ(s.total_threads(), 512);
  EXPECT_DOUBLE_EQ(s.clock_ghz, 4.35);
}

TEST(Spec, E870Peaks) {
  const SystemSpec s = e870();
  // §IV: "double-precision and memory throughputs are 2,227 GFLOP/s
  // and 1,843 GB/s".
  EXPECT_NEAR(s.peak_dp_gflops(), 2227.0, 1.0);
  EXPECT_NEAR(s.peak_mem_gbs(), 1843.0, 1.0);
  // Read-only peak (Fig. 4 denominator) and write-only roof (§IV).
  EXPECT_NEAR(s.peak_read_gbs(), 1229.0, 1.0);
  EXPECT_NEAR(s.peak_write_gbs(), 614.0, 1.0);
  // "system balance of 1.2"
  EXPECT_NEAR(s.balance(), 1.2, 0.05);
}

TEST(Spec, E870L4Aggregate) {
  const SystemSpec s = e870();
  EXPECT_EQ(s.l4_bytes(), 8ull * mib(128));
}

// -------------------------------------------------------------- topology ---

TEST(Topology, E870HasTwoGroupsOfFour) {
  const Topology t = Topology::from_spec(e870());
  EXPECT_EQ(t.chips(), 8);
  EXPECT_EQ(t.groups(), 2);
  EXPECT_EQ(t.group_of(0), 0);
  EXPECT_EQ(t.group_of(3), 0);
  EXPECT_EQ(t.group_of(4), 1);
  EXPECT_EQ(t.group_of(7), 1);
}

TEST(Topology, LinkInventoryMatchesFigure1) {
  const Topology t = Topology::from_spec(e870());
  int xbus = 0;
  int abus = 0;
  for (const auto& link : t.links()) {
    if (link.kind == LinkKind::kXBus) ++xbus;
    else ++abus;
  }
  EXPECT_EQ(xbus, 12);  // two full 4-crossbars
  EXPECT_EQ(abus, 4);   // one bundle per partner pair
}

TEST(Topology, XbusBandwidthIs39GBs) {
  const Topology t = Topology::from_spec(e870());
  const int id = t.link_between(0, 1);
  ASSERT_GE(id, 0);
  EXPECT_DOUBLE_EQ(t.link(id).gbs_per_direction, 39.2);
}

TEST(Topology, AbusBundleIsThreeLinks) {
  const Topology t = Topology::from_spec(e870());
  const int id = t.link_between(0, 4);
  ASSERT_GE(id, 0);
  EXPECT_EQ(t.link(id).kind, LinkKind::kABus);
  EXPECT_DOUBLE_EQ(t.link(id).gbs_per_direction, 3 * 12.8);
}

TEST(Topology, PartnersPairAcrossGroups) {
  const Topology t = Topology::from_spec(e870());
  for (int c = 0; c < 4; ++c) {
    EXPECT_EQ(t.partner_of(c), c + 4);
    EXPECT_EQ(t.partner_of(c + 4), c);
  }
}

TEST(Topology, NoDirectLinkBetweenNonPartners) {
  const Topology t = Topology::from_spec(e870());
  EXPECT_EQ(t.link_between(0, 5), -1);
  EXPECT_EQ(t.link_between(1, 6), -1);
  EXPECT_GE(t.link_between(0, 4), 0);
  EXPECT_GE(t.link_between(2, 3), 0);
}

TEST(Topology, IntraGroupHasSingleRoute) {
  const Topology t = Topology::from_spec(e870());
  const auto routes = t.routes(0, 2);
  ASSERT_EQ(routes.size(), 1u);
  EXPECT_EQ(routes[0].size(), 1u);
}

TEST(Topology, PartnerHasDirectPlusDetours) {
  const Topology t = Topology::from_spec(e870());
  const auto routes = t.routes(0, 4);
  ASSERT_EQ(routes.size(), 4u);  // direct + 3 X-A-X detours
  EXPECT_EQ(routes[0].size(), 1u);
  for (std::size_t r = 1; r < routes.size(); ++r)
    EXPECT_EQ(routes[r].size(), 3u);
}

TEST(Topology, NonPartnerInterGroupHasTwoShortRoutes) {
  const Topology t = Topology::from_spec(e870());
  const auto routes = t.routes(0, 5);
  ASSERT_GE(routes.size(), 2u);
  EXPECT_EQ(routes[0].size(), 2u);
  EXPECT_EQ(routes[1].size(), 2u);
}

class TopologyRoutes
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(TopologyRoutes, RoutesAreWellFormed) {
  const Topology t = Topology::from_spec(e870());
  const auto [src, dst] = GetParam();
  for (const auto& route : t.routes(src, dst)) {
    ASSERT_FALSE(route.empty());
    EXPECT_EQ(route.front().from, src);
    EXPECT_EQ(route.back().to, dst);
    for (std::size_t h = 0; h + 1 < route.size(); ++h)
      EXPECT_EQ(route[h].to, route[h + 1].from);
    for (const auto& hop : route) {
      const auto& link = t.link(hop.link);
      const bool matches =
          (hop.from == link.chip_a && hop.to == link.chip_b) ||
          (hop.from == link.chip_b && hop.to == link.chip_a);
      EXPECT_TRUE(matches);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, TopologyRoutes,
    ::testing::Values(std::pair{0, 1}, std::pair{0, 2}, std::pair{0, 3},
                      std::pair{0, 4}, std::pair{0, 5}, std::pair{0, 7},
                      std::pair{3, 7}, std::pair{5, 2}, std::pair{6, 1},
                      std::pair{7, 0}));

TEST(Topology, LatencyOrderingMatchesTableIV) {
  const Topology t = Topology::from_spec(e870());
  // Intra-group roughly half of inter-group.
  const double intra = t.min_latency_ns(0, 1);
  const double partner = t.min_latency_ns(0, 4);
  const double far = t.min_latency_ns(0, 5);
  EXPECT_LT(intra, partner);
  EXPECT_LT(partner, far);
  EXPECT_GT(partner, 2.5 * intra);
  // Layout effect: 0<->3 slower than 0<->1.
  EXPECT_GT(t.min_latency_ns(0, 3), t.min_latency_ns(0, 1));
}

TEST(Topology, LatencyIsSymmetric) {
  const Topology t = Topology::from_spec(e870());
  for (int a = 0; a < 8; ++a)
    for (int b = 0; b < 8; ++b)
      EXPECT_DOUBLE_EQ(t.min_latency_ns(a, b), t.min_latency_ns(b, a));
}

TEST(Topology, SingleGroupSystemHasNoPartner) {
  SystemSpec s = e870();
  s.sockets = 4;
  const Topology t = Topology::from_spec(s);
  EXPECT_EQ(t.groups(), 1);
  EXPECT_EQ(t.partner_of(0), -1);
}

TEST(Topology, RejectsMoreThanTwoGroups) {
  SystemSpec s = e870();
  s.sockets = 12;
  EXPECT_THROW(Topology::from_spec(s), std::invalid_argument);
}

}  // namespace
}  // namespace p8::arch
