// Tests for the shared bench helpers (bench/bench_util.hpp): counter
// dumps — including CSV/JSON escaping of hostile counter names — the
// --machine / unknown-option plumbing every bench main() uses, and
// the --threads / --task-json task-engine flags.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"

namespace {

using namespace p8;

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(WriteCounters, EmptyPathIsANoOpSuccess) {
  sim::CounterRegistry reg;
  *reg.slot("a.b") = 1;
  EXPECT_TRUE(bench::write_counters(reg, "", "bench"));
}

TEST(WriteCounters, ExtensionPicksTheFormat) {
  sim::CounterRegistry reg;
  *reg.slot("probe.hits") = 42;

  const std::string csv_path = "bench_util_test_dump.csv";
  ASSERT_TRUE(bench::write_counters(reg, csv_path, "t"));
  EXPECT_EQ(slurp(csv_path), "counter,value\nprobe.hits,42\n");
  std::remove(csv_path.c_str());

  // Case-insensitive extension sniff, like every other path option.
  const std::string upper_path = "bench_util_test_dump.CSV";
  ASSERT_TRUE(bench::write_counters(reg, upper_path, "t"));
  EXPECT_EQ(slurp(upper_path), "counter,value\nprobe.hits,42\n");
  std::remove(upper_path.c_str());

  const std::string json_path = "bench_util_test_dump.json";
  ASSERT_TRUE(bench::write_counters(reg, json_path, "t"));
  EXPECT_EQ(slurp(json_path),
            "{\n  \"bench\": \"t\",\n  \"counters\": {\n"
            "    \"probe.hits\": 42\n  }\n}\n");
  std::remove(json_path.c_str());
}

TEST(WriteCounters, UnwritablePathFailsLoudly) {
  sim::CounterRegistry reg;
  *reg.slot("a") = 1;
  EXPECT_FALSE(
      bench::write_counters(reg, "no/such/dir/bench_util_test.csv", "t"));
}

TEST(CounterCsv, HostileNamesAreRfc4180Quoted) {
  sim::CounterRegistry reg;
  *reg.slot("plain.name") = 1;
  *reg.slot("with,comma") = 2;
  *reg.slot("with\"quote") = 3;
  *reg.slot("with\nnewline") = 4;
  const std::string csv = sim::CounterRegistry(reg).to_csv();
  EXPECT_NE(csv.find("plain.name,1\n"), std::string::npos) << csv;
  EXPECT_NE(csv.find("\"with,comma\",2\n"), std::string::npos) << csv;
  EXPECT_NE(csv.find("\"with\"\"quote\",3\n"), std::string::npos) << csv;
  EXPECT_NE(csv.find("\"with\nnewline\",4\n"), std::string::npos) << csv;
  // Exactly one header plus four rows.
  EXPECT_EQ(csv.rfind("counter,value\n", 0), 0u) << csv;
}

TEST(CounterJson, HostileNamesAreEscaped) {
  sim::CounterRegistry reg;
  *reg.slot("with\"quote") = 1;
  const std::string json = reg.to_json("bench \"x\"");
  EXPECT_NE(json.find("\"bench \\\"x\\\"\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"with\\\"quote\": 1"), std::string::npos) << json;
}

// ---------------------------------------------------------------------------

common::ArgParser make_args(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "bench_util_test");
  return common::ArgParser(static_cast<int>(argv.size()), argv.data());
}

TEST(FinishArgs, ProceedsOnCleanCommandLines) {
  common::ArgParser args = make_args({"--machine=e870"});
  (void)bench::machine_arg(args);
  EXPECT_FALSE(bench::finish_args(args).has_value());
}

TEST(FinishArgs, HelpExitsZero) {
  common::ArgParser args = make_args({"--help"});
  (void)bench::machine_arg(args);
  const auto exit_code = bench::finish_args(args);
  ASSERT_TRUE(exit_code.has_value());
  EXPECT_EQ(*exit_code, 0);
}

TEST(FinishArgs, UnknownOptionExitsTwo) {
  common::ArgParser args = make_args({"--machin=e870"});
  (void)bench::machine_arg(args);
  const auto exit_code = bench::finish_args(args);
  ASSERT_TRUE(exit_code.has_value());
  EXPECT_EQ(*exit_code, 2);
}

TEST(MachineArg, DefaultsToE870AndAdvertisesPresets) {
  common::ArgParser args = make_args({});
  EXPECT_EQ(bench::machine_arg(args), "e870");
  EXPECT_NE(args.help().find("e880"), std::string::npos);
}

TEST(ThreadsArg, DefaultsToZeroMeaningHardwareThreads) {
  common::ArgParser args = make_args({});
  const auto threads = bench::threads_arg(args);
  ASSERT_TRUE(threads.has_value());
  EXPECT_EQ(*threads, 0u);
}

TEST(ThreadsArg, AcceptsTheFullValidRange) {
  for (const char* flag : {"--threads=1", "--threads=7", "--threads=4096"}) {
    common::ArgParser args = make_args({flag});
    EXPECT_TRUE(bench::threads_arg(args).has_value()) << flag;
  }
}

TEST(ThreadsArg, RejectsOutOfRangeValues) {
  for (const char* flag : {"--threads=-1", "--threads=4097",
                           "--threads=1000000"}) {
    common::ArgParser args = make_args({flag});
    EXPECT_FALSE(bench::threads_arg(args).has_value()) << flag;
  }
}

TEST(TaskTimeline, EmptyPathIsANoOpSuccess) {
  EXPECT_TRUE(bench::write_task_timeline("{}", ""));
}

TEST(TaskTimeline, WritesTheBodyVerbatim) {
  const std::string path = "bench_util_test_timeline.json";
  const std::string body = "{\"bench\": \"t\", \"timeline\": []}\n";
  ASSERT_TRUE(bench::write_task_timeline(body, path));
  EXPECT_EQ(slurp(path), body);
  std::remove(path.c_str());
}

TEST(TaskTimeline, UnwritablePathFailsLoudly) {
  EXPECT_FALSE(
      bench::write_task_timeline("{}", "no/such/dir/timeline.json"));
}

TEST(LoadMachine, ResolvesPresetsAndRejectsGarbage) {
  const auto spec = bench::load_machine("e850c");
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->system.sockets, 2);
  EXPECT_FALSE(bench::load_machine("e999").has_value());
  EXPECT_FALSE(bench::load_machine("missing_file.json").has_value());
}

}  // namespace
