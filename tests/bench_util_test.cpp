// Tests for the shared bench helpers (bench/bench_util.hpp): counter
// dumps — including CSV/JSON escaping of hostile counter names — the
// --machine / unknown-option plumbing every bench main() uses, the
// --threads / --task-json task-engine flags, and the tolerance-table
// gate machinery shared by bench_scaling_matrix and bench_predict.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"

namespace {

using namespace p8;

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(WriteCounters, EmptyPathIsANoOpSuccess) {
  sim::CounterRegistry reg;
  *reg.slot("a.b") = 1;
  EXPECT_TRUE(bench::write_counters(reg, "", "bench"));
}

TEST(WriteCounters, ExtensionPicksTheFormat) {
  sim::CounterRegistry reg;
  *reg.slot("probe.hits") = 42;

  const std::string csv_path = "bench_util_test_dump.csv";
  ASSERT_TRUE(bench::write_counters(reg, csv_path, "t"));
  EXPECT_EQ(slurp(csv_path), "counter,value\nprobe.hits,42\n");
  std::remove(csv_path.c_str());

  // Case-insensitive extension sniff, like every other path option.
  const std::string upper_path = "bench_util_test_dump.CSV";
  ASSERT_TRUE(bench::write_counters(reg, upper_path, "t"));
  EXPECT_EQ(slurp(upper_path), "counter,value\nprobe.hits,42\n");
  std::remove(upper_path.c_str());

  const std::string json_path = "bench_util_test_dump.json";
  ASSERT_TRUE(bench::write_counters(reg, json_path, "t"));
  EXPECT_EQ(slurp(json_path),
            "{\n  \"bench\": \"t\",\n  \"counters\": {\n"
            "    \"probe.hits\": 42\n  }\n}\n");
  std::remove(json_path.c_str());
}

TEST(WriteCounters, UnwritablePathFailsLoudly) {
  sim::CounterRegistry reg;
  *reg.slot("a") = 1;
  EXPECT_FALSE(
      bench::write_counters(reg, "no/such/dir/bench_util_test.csv", "t"));
}

TEST(CounterCsv, HostileNamesAreRfc4180Quoted) {
  sim::CounterRegistry reg;
  *reg.slot("plain.name") = 1;
  *reg.slot("with,comma") = 2;
  *reg.slot("with\"quote") = 3;
  *reg.slot("with\nnewline") = 4;
  const std::string csv = sim::CounterRegistry(reg).to_csv();
  EXPECT_NE(csv.find("plain.name,1\n"), std::string::npos) << csv;
  EXPECT_NE(csv.find("\"with,comma\",2\n"), std::string::npos) << csv;
  EXPECT_NE(csv.find("\"with\"\"quote\",3\n"), std::string::npos) << csv;
  EXPECT_NE(csv.find("\"with\nnewline\",4\n"), std::string::npos) << csv;
  // Exactly one header plus four rows.
  EXPECT_EQ(csv.rfind("counter,value\n", 0), 0u) << csv;
}

TEST(CounterJson, HostileNamesAreEscaped) {
  sim::CounterRegistry reg;
  *reg.slot("with\"quote") = 1;
  const std::string json = reg.to_json("bench \"x\"");
  EXPECT_NE(json.find("\"bench \\\"x\\\"\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"with\\\"quote\": 1"), std::string::npos) << json;
}

// ---------------------------------------------------------------------------

common::ArgParser make_args(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "bench_util_test");
  return common::ArgParser(static_cast<int>(argv.size()), argv.data());
}

TEST(FinishArgs, ProceedsOnCleanCommandLines) {
  common::ArgParser args = make_args({"--machine=e870"});
  (void)bench::machine_arg(args);
  EXPECT_FALSE(bench::finish_args(args).has_value());
}

TEST(FinishArgs, HelpExitsZero) {
  common::ArgParser args = make_args({"--help"});
  (void)bench::machine_arg(args);
  const auto exit_code = bench::finish_args(args);
  ASSERT_TRUE(exit_code.has_value());
  EXPECT_EQ(*exit_code, 0);
}

TEST(FinishArgs, UnknownOptionExitsTwo) {
  common::ArgParser args = make_args({"--machin=e870"});
  (void)bench::machine_arg(args);
  const auto exit_code = bench::finish_args(args);
  ASSERT_TRUE(exit_code.has_value());
  EXPECT_EQ(*exit_code, 2);
}

TEST(MachineArg, DefaultsToE870AndAdvertisesPresets) {
  common::ArgParser args = make_args({});
  EXPECT_EQ(bench::machine_arg(args), "e870");
  EXPECT_NE(args.help().find("e880"), std::string::npos);
}

TEST(ThreadsArg, DefaultsToZeroMeaningHardwareThreads) {
  common::ArgParser args = make_args({});
  const auto threads = bench::threads_arg(args);
  ASSERT_TRUE(threads.has_value());
  EXPECT_EQ(*threads, 0u);
}

TEST(ThreadsArg, AcceptsTheFullValidRange) {
  for (const char* flag : {"--threads=1", "--threads=7", "--threads=4096"}) {
    common::ArgParser args = make_args({flag});
    EXPECT_TRUE(bench::threads_arg(args).has_value()) << flag;
  }
}

TEST(ThreadsArg, RejectsOutOfRangeValues) {
  for (const char* flag : {"--threads=-1", "--threads=4097",
                           "--threads=1000000"}) {
    common::ArgParser args = make_args({flag});
    EXPECT_FALSE(bench::threads_arg(args).has_value()) << flag;
  }
}

TEST(TaskTimeline, EmptyPathIsANoOpSuccess) {
  EXPECT_TRUE(bench::write_task_timeline("{}", ""));
}

TEST(TaskTimeline, WritesTheBodyVerbatim) {
  const std::string path = "bench_util_test_timeline.json";
  const std::string body = "{\"bench\": \"t\", \"timeline\": []}\n";
  ASSERT_TRUE(bench::write_task_timeline(body, path));
  EXPECT_EQ(slurp(path), body);
  std::remove(path.c_str());
}

TEST(TaskTimeline, UnwritablePathFailsLoudly) {
  EXPECT_FALSE(
      bench::write_task_timeline("{}", "no/such/dir/timeline.json"));
}

TEST(LoadMachine, ResolvesPresetsAndRejectsGarbage) {
  const auto spec = bench::load_machine("e850c");
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->system.sockets, 2);
  EXPECT_FALSE(bench::load_machine("e999").has_value());
  EXPECT_FALSE(bench::load_machine("missing_file.json").has_value());
}

// ---------------------------------------------------------------------------
// Tolerance-table gate machinery.

TEST(GateVerdicts, AddCheckAndFailedCountAgree) {
  std::vector<bench::Verdict> verdicts;
  EXPECT_EQ(bench::failed_count(verdicts), 0);
  bench::add_check(verdicts, "latency.plateaus", true, "ordered");
  bench::add_check(verdicts, "mix.2to1-peak", false, "inverted");
  bench::add_check(verdicts, "noc.inter-gt-intra", false, "flat");
  ASSERT_EQ(verdicts.size(), 3u);
  EXPECT_EQ(verdicts[1].invariant, "mix.2to1-peak");
  EXPECT_EQ(bench::failed_count(verdicts), 2);
}

TEST(GateVerdicts, PrintFailedReportsOnlyFailuresInRowOrder) {
  std::vector<bench::Verdict> verdicts;
  bench::add_check(verdicts, "first.ok", true, "fine");
  bench::add_check(verdicts, "second.bad", false, "off by 2x");
  bench::add_check(verdicts, "third.bad", false, "missing");
  ::testing::internal::CaptureStderr();
  const int failed = bench::print_failed("e870", verdicts);
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(failed, 2);
  EXPECT_EQ(err,
            "FAIL [e870] second.bad: off by 2x\n"
            "FAIL [e870] third.bad: missing\n");
}

TEST(ToleranceChecks, WithinRatioAndStatus) {
  bench::ToleranceCheck c{"latency.DRAM", 100.0, 101.0, 0.02, false};
  EXPECT_DOUBLE_EQ(bench::tolerance_ratio(c), 1.01);
  EXPECT_TRUE(bench::tolerance_within(c));
  EXPECT_STREQ(bench::tolerance_status(c), "PASS");

  c.value = 103.0;  // 3% off a 2% tolerance
  EXPECT_FALSE(bench::tolerance_within(c));
  EXPECT_STREQ(bench::tolerance_status(c), "FAIL");

  c.allow_warn = true;  // documented deviation
  EXPECT_STREQ(bench::tolerance_status(c), "ALLOWED");

  // The boundary itself passes: |ratio - 1| <= tol, not < (values
  // chosen binary-exact so the ratio is exactly 1.25).
  const bench::ToleranceCheck edge{"edge", 8.0, 10.0, 0.25, false};
  EXPECT_TRUE(bench::tolerance_within(edge));
  const bench::ToleranceCheck past{"past", 8.0, 10.5, 0.25, false};
  EXPECT_FALSE(bench::tolerance_within(past));
}

TEST(ToleranceChecks, ZeroReferenceRequiresZeroValue) {
  bench::ToleranceCheck zero{"stream.idle", 0.0, 0.0, 0.02, false};
  EXPECT_EQ(bench::tolerance_ratio(zero), 0.0);
  EXPECT_TRUE(bench::tolerance_within(zero));
  zero.value = 1e-9;
  EXPECT_FALSE(bench::tolerance_within(zero));
  EXPECT_STREQ(bench::tolerance_status(zero), "FAIL");
}

TEST(ToleranceChecks, VerdictRendersStatusAndGatesOnlyOnFail) {
  const bench::Verdict pass = bench::tolerance_verdict(
      {"latency.L1", 0.7, 0.7, 0.02, false});
  EXPECT_TRUE(pass.ok);
  EXPECT_EQ(pass.invariant, "latency.L1");
  EXPECT_NE(pass.detail.find("PASS"), std::string::npos);

  const bench::Verdict allowed = bench::tolerance_verdict(
      {"bw.write-only", 10.0, 20.0, 0.02, true});
  EXPECT_TRUE(allowed.ok) << "ALLOWED rows must not gate";
  EXPECT_NE(allowed.detail.find("ALLOWED"), std::string::npos);

  const bench::Verdict fail = bench::tolerance_verdict(
      {"bw.2to1", 10.0, 20.0, 0.02, false});
  EXPECT_FALSE(fail.ok);
  EXPECT_NE(fail.detail.find("FAIL"), std::string::npos);
  EXPECT_NE(fail.detail.find("ratio 2"), std::string::npos);
}

TEST(HierarchyLandmarks, CoversEveryLevelOfTheE870MidPlateau) {
  const auto spec = bench::load_machine("e870");
  ASSERT_TRUE(spec.has_value());
  const auto landmarks = bench::hierarchy_landmarks(spec->system);
  ASSERT_EQ(landmarks.size(), 6u);
  const char* levels[] = {"L1", "L2", "L3", "chip-L3", "L4", "DRAM"};
  for (std::size_t i = 0; i < landmarks.size(); ++i) {
    EXPECT_STREQ(landmarks[i].level, levels[i]);
    if (i > 0) EXPECT_GT(landmarks[i].bytes, landmarks[i - 1].bytes);
  }
  // Each landmark sits strictly inside its plateau: L1's is half the
  // L1, L2's between the L1 and L2 capacities, and so on.
  EXPECT_EQ(landmarks[0].bytes, spec->system.processor.core.l1d_bytes / 2);
  EXPECT_LT(landmarks[1].bytes, spec->system.processor.core.l2_bytes);
  EXPECT_GT(landmarks[1].bytes, spec->system.processor.core.l1d_bytes);
}

TEST(HierarchyLandmarks, SkipsLevelsTheSpecDoesNotHave) {
  auto spec = bench::load_machine("e870");
  ASSERT_TRUE(spec.has_value());
  // Ablate the L4 below the chip L3: the L4 plateau disappears and the
  // DRAM landmark is sized off the deepest remaining level.
  spec->system.centaur.l4_bytes = 1;
  const auto landmarks = bench::hierarchy_landmarks(spec->system);
  for (const auto& lm : landmarks) EXPECT_STRNE(lm.level, "L4");
  const std::uint64_t chip_l3 = spec->system.processor.l3_total_bytes(
      spec->system.cores_per_chip);
  EXPECT_EQ(landmarks.back().bytes, 4 * chip_l3);
}

}  // namespace
