// Unit tests for the common runtime: RNG, statistics, tables,
// partitioning, the thread pool and CLI parsing.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

#include "common/cli.hpp"
#include "common/contract.hpp"
#include "common/hugealloc.hpp"
#include "common/partition.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/threading.hpp"
#include "common/units.hpp"

namespace p8::common {
namespace {

// ---------------------------------------------------------------- units ----

TEST(Units, BinaryCapacities) {
  EXPECT_EQ(kib(1), 1024u);
  EXPECT_EQ(mib(8), 8u * 1024 * 1024);
  EXPECT_EQ(gib(2), 2ull * 1024 * 1024 * 1024);
}

TEST(Units, DecimalRates) {
  EXPECT_DOUBLE_EQ(gb_per_s(19.2), 19.2e9);
  EXPECT_DOUBLE_EQ(to_gb_per_s(1.472e12), 1472.0);
  EXPECT_DOUBLE_EQ(to_ns(ns(95.0)), 95.0);
}

// ------------------------------------------------------------------ rng ----

TEST(Rng, DeterministicForSeed) {
  Xoshiro256 a(7);
  Xoshiro256 b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a() == b() ? 1 : 0;
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Xoshiro256 rng(11);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(Rng, BoundedStaysInRange) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 10000; ++i) ASSERT_LT(rng.bounded(17), 17u);
}

TEST(Rng, BoundedCoversRange) {
  Xoshiro256 rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.bounded(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, BoundedZeroIsZero) {
  Xoshiro256 rng(5);
  EXPECT_EQ(rng.bounded(0), 0u);
}

TEST(Rng, SplitMixKnownFirstValue) {
  // Reference value from the SplitMix64 paper implementation.
  SplitMix64 sm(0);
  EXPECT_EQ(sm.next(), 0xe220a8397b1dcdafULL);
}

// ---------------------------------------------------------------- stats ----

TEST(Stats, MeanAndVariance) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(Stats, EmptyIsSafe) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(Stats, MergeMatchesSequential) {
  RunningStats whole;
  RunningStats left;
  RunningStats right;
  Xoshiro256 rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform() * 10.0;
    whole.add(x);
    (i % 2 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(Stats, MergeWithEmpty) {
  RunningStats a;
  a.add(3.0);
  RunningStats b;
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 3.0);
}

TEST(Stats, QuantileInterpolates) {
  std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 2.5);
}

TEST(Stats, QuantileRejectsBadInput) {
  EXPECT_THROW(quantile({}, 0.5), std::invalid_argument);
  EXPECT_THROW(quantile({1.0}, 1.5), std::invalid_argument);
}

// ---------------------------------------------------------------- table ----

TEST(Table, RendersHeaderAndRows) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"beta", "22"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("22"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.columns(), 2u);
}

TEST(Table, RejectsArityMismatch) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, CsvQuotesCommas) {
  TextTable t({"k", "v"});
  t.add_row({"x,y", "1"});
  EXPECT_NE(t.to_csv().find("\"x,y\""), std::string::npos);
}

TEST(Table, FmtNumTrimsZeros) {
  EXPECT_EQ(fmt_num(1472.0, 1), "1472");
  EXPECT_EQ(fmt_num(26.5, 1), "26.5");
  EXPECT_EQ(fmt_num(0.8333, 2), "0.83");
}

TEST(Table, FmtBytesPicksUnit) {
  EXPECT_EQ(fmt_bytes(64.0 * 1024), "64 KB");
  EXPECT_EQ(fmt_bytes(8.0 * 1024 * 1024), "8 MB");
}

// ------------------------------------------------------------ partition ----

TEST(Partition, EqualWeightsSplitEvenly) {
  std::vector<std::uint64_t> w(100, 1);
  const auto b = balanced_partition(w, 4);
  ASSERT_EQ(b.size(), 5u);
  EXPECT_EQ(b.front(), 0u);
  EXPECT_EQ(b.back(), 100u);
  for (std::size_t p = 0; p < 4; ++p) EXPECT_EQ(b[p + 1] - b[p], 25u);
}

TEST(Partition, SkewedWeightsBalanceLoad) {
  // One heavy item at the front.
  std::vector<std::uint64_t> w(100, 1);
  w[0] = 100;
  const auto b = balanced_partition(w, 2);
  // First part should hold just the heavy item (plus a little).
  EXPECT_LE(b[1], 5u);
}

TEST(Partition, MorePartsThanItems) {
  std::vector<std::uint64_t> w{5, 5};
  const auto b = balanced_partition(w, 8);
  ASSERT_EQ(b.size(), 9u);
  for (std::size_t p = 0; p + 1 < b.size(); ++p) EXPECT_LE(b[p], b[p + 1]);
  EXPECT_EQ(b.back(), 2u);
}

TEST(Partition, EmptyInput) {
  const auto b = balanced_partition({}, 3);
  ASSERT_EQ(b.size(), 4u);
  for (const auto x : b) EXPECT_EQ(x, 0u);
}

TEST(Partition, RowsByNnz) {
  std::vector<std::uint64_t> row_ptr{0, 10, 10, 10, 20};
  const auto b = partition_rows_by_nnz(row_ptr, 2);
  // Each half should hold one heavy row.
  EXPECT_GE(b[1], 1u);
  EXPECT_LE(b[1], 3u);
}

class PartitionBalance : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PartitionBalance, NoPartExceedsTwiceIdeal) {
  const std::size_t parts = GetParam();
  Xoshiro256 rng(parts);
  std::vector<std::uint64_t> w(4096);
  for (auto& x : w) x = 1 + rng.bounded(100);
  const auto b = balanced_partition(w, parts);
  std::uint64_t total = std::accumulate(w.begin(), w.end(), 0ull);
  const double ideal = static_cast<double>(total) / parts;
  for (std::size_t p = 0; p < parts; ++p) {
    std::uint64_t sum = 0;
    for (std::size_t i = b[p]; i < b[p + 1]; ++i) sum += w[i];
    EXPECT_LE(static_cast<double>(sum), 2.0 * ideal + 100.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Parts, PartitionBalance,
                         ::testing::Values(1, 2, 3, 4, 7, 8, 16, 64));

// ------------------------------------------------------------ threading ----

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, 1000, [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool touched = false;
  pool.parallel_for(5, 5, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ThreadPool, DynamicCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(777);
  pool.parallel_for_dynamic(0, 777, 10,
                            [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, StaticRangesPartitionExactly) {
  ThreadPool pool(5);
  std::size_t covered = 0;
  std::size_t prev_end = 3;
  for (std::size_t w = 0; w < pool.size(); ++w) {
    const auto [lo, hi] = pool.static_range(3, 103, w);
    EXPECT_EQ(lo, prev_end);
    prev_end = hi;
    covered += hi - lo;
  }
  EXPECT_EQ(covered, 100u);
  EXPECT_EQ(prev_end, 103u);
}

TEST(ThreadPool, ReduceSumsCorrectly) {
  ThreadPool pool(4);
  const auto sum = pool.parallel_reduce<std::uint64_t>(
      0, 10001, [] { return std::uint64_t{0}; },
      [](std::uint64_t& acc, std::size_t i) { acc += i; },
      [](std::uint64_t& into, const std::uint64_t& from) { into += from; });
  EXPECT_EQ(sum, 10000ull * 10001 / 2);
}

TEST(ThreadPool, ExceptionsPropagate) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(0, 100,
                                 [&](std::size_t i) {
                                   if (i == 57)
                                     throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
  // The pool must still be usable afterwards.
  std::atomic<int> n{0};
  pool.parallel_for(0, 10, [&](std::size_t) { ++n; });
  EXPECT_EQ(n.load(), 10);
}

TEST(ThreadPool, SingleWorkerRunsInline) {
  ThreadPool pool(1);
  std::atomic<int> n{0};
  pool.parallel_for(0, 100, [&](std::size_t) { ++n; });
  EXPECT_EQ(n.load(), 100);
}

TEST(ThreadPool, RejectsZeroWorkers) {
  EXPECT_THROW(ThreadPool pool(0), std::invalid_argument);
}

// ------------------------------------------------------------------ cli ----

TEST(Cli, ParsesEqualsAndSpaceForms) {
  const char* argv[] = {"prog", "--alpha=3", "--name", "bob", "--flag"};
  ArgParser p(5, argv);
  EXPECT_EQ(p.get_int("alpha", 0, ""), 3);
  EXPECT_EQ(p.get_string("name", "", ""), "bob");
  EXPECT_TRUE(p.get_flag("flag", ""));
  EXPECT_FALSE(p.finish());
}

TEST(Cli, DefaultsApply) {
  const char* argv[] = {"prog"};
  ArgParser p(1, argv);
  EXPECT_EQ(p.get_int("n", 42, ""), 42);
  EXPECT_DOUBLE_EQ(p.get_double("x", 2.5, ""), 2.5);
  EXPECT_FALSE(p.get_flag("quiet", ""));
}

TEST(Cli, IendsWithIsCaseInsensitive) {
  // Extension sniffing for --counters: "x.csv", "x.CSV" and "x.CsV"
  // must all select CSV output.
  EXPECT_TRUE(iends_with("dump.csv", ".csv"));
  EXPECT_TRUE(iends_with("dump.CSV", ".csv"));
  EXPECT_TRUE(iends_with("dump.CsV", ".csv"));
  EXPECT_FALSE(iends_with("dump.json", ".csv"));
  EXPECT_FALSE(iends_with("dumpcsv", ".csv"));   // no dot
  EXPECT_FALSE(iends_with("csv", ".csv"));       // shorter than suffix
  EXPECT_TRUE(iends_with(".csv", ".csv"));       // exact match
  EXPECT_FALSE(iends_with("a.csv.bak", ".csv")); // suffix, not substring
}

TEST(Cli, UnknownOptionRejected) {
  const char* argv[] = {"prog", "--mystery=1"};
  ArgParser p(2, argv);
  p.get_int("known", 0, "");
  EXPECT_THROW(p.finish(), std::invalid_argument);
}

TEST(Cli, TinyDoubleDefaultSurvives) {
  // Regression: std::to_string(1e-10) is "0.000000"; the default must
  // not be round-tripped through a string.
  const char* argv[] = {"prog"};
  ArgParser p(1, argv);
  EXPECT_DOUBLE_EQ(p.get_double("tol", 1e-10, ""), 1e-10);
}

TEST(Cli, GivenDoubleParsesScientific) {
  const char* argv[] = {"prog", "--tol=1e-8"};
  ArgParser p(2, argv);
  EXPECT_DOUBLE_EQ(p.get_double("tol", 1e-10, ""), 1e-8);
}

TEST(Cli, BadIntegerRejected) {
  const char* argv[] = {"prog", "--n=abc"};
  ArgParser p(2, argv);
  EXPECT_THROW(p.get_int("n", 0, ""), std::invalid_argument);
}

TEST(Cli, TrailingGarbageIntegerRejected) {
  // Regression: "--trials 10x" parsed as 10 (std::stoll stops at the
  // first non-digit); it must be an error in both argument forms.
  {
    const char* argv[] = {"prog", "--n=10x"};
    ArgParser p(2, argv);
    EXPECT_THROW(p.get_int("n", 0, ""), std::invalid_argument);
  }
  {
    const char* argv[] = {"prog", "--trials", "10x"};
    ArgParser p(3, argv);
    EXPECT_THROW(p.get_int("trials", 0, ""), std::invalid_argument);
  }
}

TEST(Cli, TrailingGarbageDoubleRejected) {
  const char* argv[] = {"prog", "--x=1.5q"};
  ArgParser p(2, argv);
  EXPECT_THROW(p.get_double("x", 0.0, ""), std::invalid_argument);
}

TEST(Cli, WellFormedNumbersStillParse) {
  const char* argv[] = {"prog", "--n=-7", "--x=2.5e3"};
  ArgParser p(3, argv);
  EXPECT_EQ(p.get_int("n", 0, ""), -7);
  EXPECT_DOUBLE_EQ(p.get_double("x", 0.0, ""), 2.5e3);
  EXPECT_FALSE(p.finish());
}

TEST(Cli, FlagLiterals) {
  // Regression: "--v=yes" used to read as *false*; only the documented
  // literals are accepted now.
  {
    const char* argv[] = {"prog", "--a=1", "--b=true", "--c=0", "--d=false"};
    ArgParser p(5, argv);
    EXPECT_TRUE(p.get_flag("a", ""));
    EXPECT_TRUE(p.get_flag("b", ""));
    EXPECT_FALSE(p.get_flag("c", ""));
    EXPECT_FALSE(p.get_flag("d", ""));
    EXPECT_FALSE(p.finish());
  }
  {
    const char* argv[] = {"prog", "--v=yes"};
    ArgParser p(2, argv);
    EXPECT_THROW(p.get_flag("v", ""), std::invalid_argument);
  }
}

TEST(Cli, HelpRequested) {
  const char* argv[] = {"prog", "--help"};
  ArgParser p(2, argv);
  p.get_int("n", 1, "the n");
  EXPECT_TRUE(p.finish());
  EXPECT_TRUE(p.help_requested());
  EXPECT_NE(p.help().find("--n"), std::string::npos);
}

TEST(Cli, UnknownArgsListsOnlyUnconsumedOptions) {
  // The non-throwing sibling of finish(): misspelled options come back
  // in sorted order, declared/consumed ones and --help do not.
  const char* argv[] = {"prog", "--zeta=1", "--alpha=2", "--known=3",
                        "--help"};
  ArgParser p(5, argv);
  p.get_int("known", 0, "");
  const std::vector<std::string> unknown = p.unknown_args();
  ASSERT_EQ(unknown.size(), 2u);
  EXPECT_EQ(unknown[0], "alpha");
  EXPECT_EQ(unknown[1], "zeta");
  EXPECT_TRUE(p.help_requested());
}

TEST(Cli, UnknownArgsEmptyOnCleanCommandLine) {
  const char* argv[] = {"prog", "--n=7"};
  ArgParser p(2, argv);
  p.get_int("n", 0, "");
  EXPECT_TRUE(p.unknown_args().empty());
  EXPECT_FALSE(p.help_requested());
}

TEST(Cli, SuggestFindsNearbyDeclaredOption) {
  const char* argv[] = {"prog"};
  ArgParser p(1, argv);
  p.get_string("machine", "e870", "");
  p.get_int("threads", 1, "");
  EXPECT_EQ(p.suggest("machin"), "machine");    // one deletion
  EXPECT_EQ(p.suggest("mahcine"), "machine");   // transposed pair
  EXPECT_EQ(p.suggest("treads"), "threads");    // one deletion
  EXPECT_EQ(p.suggest("verbose"), "");          // nothing close
}

// ------------------------------------------------------- huge alloc ----

TEST(HugePageAllocator, OverflowingElementCountThrowsBadAlloc) {
  // n * sizeof(T) would wrap around SIZE_MAX; before the guard this
  // handed a tiny block to a caller about to index gigabytes past it.
  HugePageAllocator<std::uint64_t> alloc;
  const std::size_t overflowing = SIZE_MAX / sizeof(std::uint64_t) + 1;
  EXPECT_THROW((void)alloc.allocate(overflowing), std::bad_alloc);
  EXPECT_THROW((void)alloc.allocate(SIZE_MAX), std::bad_alloc);
}

TEST(HugePageAllocator, SmallAndZeroAllocationsStillWork) {
  HugePageAllocator<std::uint64_t> alloc;
  std::uint64_t* p = alloc.allocate(16);
  ASSERT_NE(p, nullptr);
  p[0] = 42;
  p[15] = 7;
  alloc.deallocate(p, 16);
  std::uint64_t* z = alloc.allocate(0);
  ASSERT_NE(z, nullptr);
  alloc.deallocate(z, 0);
}

// ------------------------------------------------------------ contracts ----
// This TU does NOT force P8_CONTRACTS_ENABLED, so it sees whatever the
// build configured — exactly what the simulator sources see.  The
// forced-on/forced-off semantics live in contracts_test.cpp /
// contracts_off_test.cpp; here we pin that the build-facing behaviour
// matches contracts_enabled().

TEST(Contract, BuildModeMatchesReportedState) {
  if (contracts_enabled()) {
    EXPECT_THROW(P8_ENSURE(false, "active in this build"), ContractViolation);
  } else {
    EXPECT_NO_THROW(P8_ENSURE(false, "compiled out in this build"));
  }
}

TEST(Contract, PassingContractsAreAlwaysSilent) {
  EXPECT_NO_THROW(P8_ENSURE(2 + 2 == 4, "arithmetic"));
  EXPECT_NO_THROW(P8_INVARIANT(true, ""));
}

TEST(Contract, StaticRequireIsUnconditional) {
  P8_STATIC_REQUIRE(sizeof(void*) >= 4, "pointers are at least 32 bits");
  SUCCEED();
}

}  // namespace
}  // namespace p8::common
