// Contract-macro semantics with contracts FORCED OFF: the macros must
// generate no code and never evaluate their expression — this is the
// zero-cost guarantee the Release figure benches rely on — while still
// *parsing* the expression, so a contract referencing a renamed member
// breaks the build instead of bit-rotting.  Paired with
// contracts_test.cpp (forced ON) in the same test binary.
#ifdef P8_CONTRACTS_ENABLED
#undef P8_CONTRACTS_ENABLED
#endif
#define P8_CONTRACTS_ENABLED 0

#include <gtest/gtest.h>

#include "common/contract.hpp"

namespace p8::common {
namespace {

TEST(ContractsOff, ThisTranslationUnitHasContractsDisabled) {
  EXPECT_FALSE(contracts_enabled());
}

TEST(ContractsOff, FailingContractsAreNoOps) {
  EXPECT_NO_THROW(P8_ENSURE(false, "compiled out"));
  EXPECT_NO_THROW(P8_INVARIANT(false, "compiled out"));
}

TEST(ContractsOff, ExpressionIsNeverEvaluated) {
  int evaluations = 0;
  P8_ENSURE((++evaluations, false), "must not run");
  P8_INVARIANT((++evaluations, false), "must not run");
  EXPECT_EQ(evaluations, 0);
}

TEST(ContractsOff, ExpensivePredicateIsNeverCalled) {
  bool called = false;
  auto expensive = [&called]() {
    called = true;
    return false;
  };
  P8_INVARIANT(expensive(), "whole-structure scan, contracts only");
  EXPECT_FALSE(called);
}

TEST(ContractsOff, StaticRequireStillFires) {
  // The compile-time tier is not gated: it costs nothing at runtime.
  P8_STATIC_REQUIRE(sizeof(long long) >= 8, "long long is at least 64 bits");
  SUCCEED();
}

}  // namespace
}  // namespace p8::common
