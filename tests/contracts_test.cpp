// Contract-macro semantics with contracts FORCED ON, independent of
// the build type: violations throw ContractViolation carrying the
// failed expression text, passing contracts evaluate exactly once, and
// messages compose the kind/file/expression parts correctly.  The
// paired TU contracts_off_test.cpp forces them OFF and checks the
// inverse (no evaluation, no code).  Together the two TUs pin the
// macro behaviour in the same binary regardless of how the tree was
// configured.
#ifdef P8_CONTRACTS_ENABLED
#undef P8_CONTRACTS_ENABLED
#endif
#define P8_CONTRACTS_ENABLED 1

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "common/contract.hpp"

namespace p8::common {
namespace {

TEST(ContractsOn, ThisTranslationUnitHasContractsActive) {
  EXPECT_TRUE(contracts_enabled());
}

TEST(ContractsOn, PassingEnsureIsSilent) {
  EXPECT_NO_THROW(P8_ENSURE(1 + 1 == 2, "arithmetic works"));
  EXPECT_NO_THROW(P8_INVARIANT(true, ""));
}

TEST(ContractsOn, FailingEnsureThrowsContractViolation) {
  EXPECT_THROW(P8_ENSURE(false, "must fail"), ContractViolation);
  EXPECT_THROW(P8_INVARIANT(false, "must fail"), ContractViolation);
  // ContractViolation is a logic_error: contract failures are
  // simulator bugs, not runtime conditions.
  EXPECT_THROW(P8_ENSURE(false, ""), std::logic_error);
}

TEST(ContractsOn, ViolationCarriesExpressionText) {
  try {
    const int sets = 3;
    P8_ENSURE(sets % 2 == 0, "sets must be even");
    FAIL() << "P8_ENSURE(false) did not throw";
  } catch (const ContractViolation& e) {
    EXPECT_STREQ(e.expression(), "sets % 2 == 0");
    const std::string what = e.what();
    EXPECT_NE(what.find("sets % 2 == 0"), std::string::npos);
    EXPECT_NE(what.find("postcondition"), std::string::npos);
    EXPECT_NE(what.find("sets must be even"), std::string::npos);
    EXPECT_NE(what.find("contracts_test.cpp"), std::string::npos);
  }
}

TEST(ContractsOn, InvariantReportsItsKind) {
  try {
    P8_INVARIANT(false, "broken state");
    FAIL() << "P8_INVARIANT(false) did not throw";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("invariant"), std::string::npos);
  }
}

TEST(ContractsOn, EmptyMessageOmitsSeparator) {
  try {
    P8_INVARIANT(false, "");
    FAIL();
  } catch (const ContractViolation& e) {
    EXPECT_EQ(std::string(e.what()).find(" — "), std::string::npos);
  }
}

TEST(ContractsOn, ExpressionEvaluatesExactlyOnce) {
  int evaluations = 0;
  P8_ENSURE((++evaluations, true), "");
  EXPECT_EQ(evaluations, 1);
  P8_INVARIANT((++evaluations, true), "");
  EXPECT_EQ(evaluations, 2);
}

TEST(ContractsOn, StaticRequireCompiles) {
  P8_STATIC_REQUIRE(sizeof(int) >= 2, "int is at least 16 bits");
  SUCCEED();
}

}  // namespace
}  // namespace p8::common
