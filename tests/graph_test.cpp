// Tests for the graph/sparse substrate: CSR construction, transpose,
// R-MAT generation, the synthetic matrix suite and the structure
// statistics.
#include <gtest/gtest.h>

#include <map>
#include <sstream>

#include "common/threading.hpp"
#include "graph/csr.hpp"
#include "graph/io.hpp"
#include "graph/matrices.hpp"
#include "graph/rmat.hpp"
#include "graph/spgemm.hpp"
#include "graph/stats.hpp"

namespace p8::graph {
namespace {

// -------------------------------------------------------------------- CSR --

TEST(Csr, FromTripletsSortsAndStores) {
  const CsrMatrix m = CsrMatrix::from_triplets(
      3, 4, {{2, 1, 5.0}, {0, 3, 1.0}, {0, 0, 2.0}});
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_EQ(m.nnz(), 3u);
  EXPECT_TRUE(m.well_formed());
  ASSERT_EQ(m.row_cols(0).size(), 2u);
  EXPECT_EQ(m.row_cols(0)[0], 0u);
  EXPECT_EQ(m.row_cols(0)[1], 3u);
  EXPECT_DOUBLE_EQ(m.row_values(0)[0], 2.0);
  EXPECT_EQ(m.row_nnz(1), 0u);
  EXPECT_EQ(m.row_cols(2)[0], 1u);
}

TEST(Csr, DuplicatesAreSummed) {
  const CsrMatrix m =
      CsrMatrix::from_triplets(2, 2, {{0, 1, 1.5}, {0, 1, 2.5}});
  EXPECT_EQ(m.nnz(), 1u);
  EXPECT_DOUBLE_EQ(m.row_values(0)[0], 4.0);
}

TEST(Csr, EmptyMatrix) {
  const CsrMatrix m = CsrMatrix::from_triplets(5, 5, {});
  EXPECT_EQ(m.nnz(), 0u);
  EXPECT_TRUE(m.well_formed());
  for (std::uint32_t r = 0; r < 5; ++r) EXPECT_EQ(m.row_nnz(r), 0u);
}

TEST(Csr, OutOfRangeTripletRejected) {
  EXPECT_THROW(CsrMatrix::from_triplets(2, 2, {{2, 0, 1.0}}),
               std::invalid_argument);
  EXPECT_THROW(CsrMatrix::from_triplets(2, 2, {{0, 2, 1.0}}),
               std::invalid_argument);
}

TEST(Csr, TransposeSmallKnown) {
  const CsrMatrix m = CsrMatrix::from_triplets(
      2, 3, {{0, 0, 1.0}, {0, 2, 2.0}, {1, 1, 3.0}});
  const CsrMatrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_TRUE(t.well_formed());
  EXPECT_DOUBLE_EQ(t.row_values(0)[0], 1.0);
  EXPECT_EQ(t.row_cols(1)[0], 1u);
  EXPECT_DOUBLE_EQ(t.row_values(2)[0], 2.0);
}

TEST(Csr, TransposeIsInvolution) {
  const CsrMatrix m = random_uniform(200, 5, 99);
  const CsrMatrix tt = m.transposed().transposed();
  ASSERT_EQ(tt.nnz(), m.nnz());
  for (std::uint32_t r = 0; r < m.rows(); ++r) {
    const auto a = m.row_cols(r);
    const auto b = tt.row_cols(r);
    ASSERT_EQ(a.size(), b.size()) << "row " << r;
    for (std::size_t k = 0; k < a.size(); ++k) {
      EXPECT_EQ(a[k], b[k]);
      EXPECT_DOUBLE_EQ(m.row_values(r)[k], tt.row_values(r)[k]);
    }
  }
}

TEST(Csr, MemoryBytesAccounting) {
  const CsrMatrix m = random_uniform(100, 4, 1);
  EXPECT_EQ(m.memory_bytes(),
            101 * sizeof(std::uint64_t) + m.nnz() * (4 + 8));
}

// ------------------------------------------------------------------ graph --

TEST(Graph, FromEdgesSymmetrizesAndCleans) {
  const std::vector<std::pair<std::uint32_t, std::uint32_t>> edges{
      {0, 1}, {1, 0}, {2, 2}, {1, 2}};
  const Graph g = graph_from_edges(3, edges);
  EXPECT_EQ(g.vertices(), 3u);
  EXPECT_EQ(g.edges(), 2u);  // {0,1} deduped, {2,2} dropped
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(1), 2u);
  EXPECT_EQ(g.degree(2), 1u);
  // Symmetry.
  EXPECT_EQ(g.neighbors(0)[0], 1u);
  EXPECT_EQ(g.neighbors(2)[0], 1u);
}

TEST(Graph, MultiEdgesClampToOne) {
  const std::vector<std::pair<std::uint32_t, std::uint32_t>> edges{
      {0, 1}, {0, 1}, {0, 1}};
  const Graph g = graph_from_edges(2, edges);
  EXPECT_EQ(g.edges(), 1u);
  EXPECT_DOUBLE_EQ(g.adjacency.row_values(0)[0], 1.0);
}

// ------------------------------------------------------------------- RMAT --

TEST(Rmat, EdgeCountMatchesSpec) {
  RmatOptions o;
  o.scale = 10;
  o.edge_factor = 16;
  EXPECT_EQ(rmat_edges(o).size(), (1u << 10) * 16u);
}

TEST(Rmat, DeterministicBySeed) {
  RmatOptions o;
  o.scale = 8;
  const auto a = rmat_edges(o);
  const auto b = rmat_edges(o);
  EXPECT_EQ(a, b);
  o.seed = 2;
  EXPECT_NE(rmat_edges(o), a);
}

TEST(Rmat, VerticesInRange) {
  RmatOptions o;
  o.scale = 9;
  for (const auto& [u, v] : rmat_edges(o)) {
    EXPECT_LT(u, 1u << 9);
    EXPECT_LT(v, 1u << 9);
  }
}

TEST(Rmat, GraphIsHeavyTailed) {
  RmatOptions o;
  o.scale = 12;
  const Graph g = rmat_graph(o);
  const DegreeStats s = degree_stats(g.adjacency);
  // Graph500 parameters produce a strongly skewed degree profile.
  EXPECT_GT(s.gini, 0.45);
  EXPECT_GT(s.top1_percent_share, 0.08);
  EXPECT_GT(s.max, 40 * static_cast<std::uint64_t>(s.mean));
}

TEST(Rmat, UniformQuadrantsAreNotHeavyTailed) {
  RmatOptions o;
  o.scale = 12;
  o.a = o.b = o.c = 0.25;
  const DegreeStats s = degree_stats(rmat_graph(o).adjacency);
  EXPECT_LT(s.gini, 0.25);
}

TEST(Rmat, PermutationPreservesStructureNotLayout) {
  RmatOptions o;
  o.scale = 10;
  o.permute_vertices = false;
  const auto fixed = rmat_graph(o);
  o.permute_vertices = true;
  const auto shuffled = rmat_graph(o);
  // Same scale-free character either way.
  EXPECT_NEAR(degree_stats(fixed.adjacency).gini,
              degree_stats(shuffled.adjacency).gini, 0.1);
  // Without permutation R-MAT hubs concentrate at low ids, giving a
  // small normalized bandwidth contribution difference; just check
  // both are valid graphs.
  EXPECT_TRUE(fixed.adjacency.well_formed());
  EXPECT_TRUE(shuffled.adjacency.well_formed());
}

TEST(Rmat, Validation) {
  RmatOptions o;
  o.scale = 0;
  EXPECT_THROW(rmat_edges(o), std::invalid_argument);
  o.scale = 8;
  o.a = 1.1;
  EXPECT_THROW(rmat_edges(o), std::invalid_argument);
}

// ------------------------------------------------------------- generators --

TEST(Matrices, DenseIsDense) {
  const CsrMatrix m = dense_matrix(50);
  EXPECT_EQ(m.nnz(), 2500u);
  EXPECT_TRUE(m.well_formed());
}

TEST(Matrices, LatticeSevenPoint) {
  const CsrMatrix m = lattice_3d(8, 8, 8, 7);
  EXPECT_EQ(m.rows(), 512u);
  // Periodic 7-point: exactly 7 nnz per row.
  for (std::uint32_t r = 0; r < m.rows(); ++r)
    EXPECT_EQ(m.row_nnz(r), 7u);
}

TEST(Matrices, LatticeTwentySevenPoint) {
  const CsrMatrix m = lattice_3d(6, 6, 6, 27);
  for (std::uint32_t r = 0; r < m.rows(); ++r)
    EXPECT_EQ(m.row_nnz(r), 27u);
}

TEST(Matrices, FemIsBanded) {
  const CsrMatrix m = fem_banded(2000, 3, 12, 40, 7);
  EXPECT_LT(normalized_bandwidth(m), 0.05);
  EXPECT_TRUE(m.well_formed());
}

TEST(Matrices, RandomUniformIsNot) {
  const CsrMatrix m = random_uniform(2000, 8, 7);
  EXPECT_GT(normalized_bandwidth(m), 0.2);
}

TEST(Matrices, PowerLawIsSkewed) {
  const CsrMatrix m = power_law(20000, 5.0, 2.1, 3);
  const DegreeStats s = degree_stats(m);
  EXPECT_GT(s.gini, 0.5);
  EXPECT_NEAR(s.mean, 5.0, 1.5);
}

TEST(Matrices, LpIsRectangularWithHeavyRows) {
  const CsrMatrix m = lp_rectangular(1024, 8192, 10, 5);
  EXPECT_EQ(m.rows(), 1024u);
  EXPECT_EQ(m.cols(), 8192u);
  const DegreeStats s = degree_stats(m);
  EXPECT_GT(s.max, 8 * static_cast<std::uint64_t>(s.mean));
}

TEST(Matrices, SuiteHasFourteenEntries) {
  const auto suite = figure11_suite(0.1);
  ASSERT_EQ(suite.size(), 14u);
  EXPECT_EQ(suite.front().name, "Dense");
  EXPECT_EQ(suite.back().name, "LP");
  for (const auto& e : suite) {
    EXPECT_TRUE(e.matrix.well_formed()) << e.name;
    EXPECT_GT(e.matrix.nnz(), 0u) << e.name;
  }
}

TEST(Matrices, SuiteScalesWithFactor) {
  const auto small = figure11_suite(0.05);
  const auto larger = figure11_suite(0.1);
  // The generators with scalable dimensions must grow.
  EXPECT_GT(larger[1].matrix.nnz(), small[1].matrix.nnz());
}

// ------------------------------------------------------------------ stats --

TEST(Stats, UniformDegreesGiniZero) {
  const CsrMatrix m = lattice_3d(6, 6, 6, 7);
  EXPECT_NEAR(degree_stats(m).gini, 0.0, 0.01);
}

TEST(Stats, KnownSkew) {
  // 3 rows: lengths 0, 0, 10 -> strongly unequal.
  std::vector<Triplet> t;
  for (std::uint32_t c = 0; c < 10; ++c) t.push_back({2, c, 1.0});
  const CsrMatrix m = CsrMatrix::from_triplets(3, 10, std::move(t));
  EXPECT_GT(degree_stats(m).gini, 0.6);
  EXPECT_EQ(degree_stats(m).max, 10u);
  EXPECT_EQ(degree_stats(m).min, 0u);
}

// ----------------------------------------------------------------- spgemm --

common::ThreadPool& spgemm_pool() {
  static common::ThreadPool p(3);
  return p;
}

TEST(Spgemm, IdentityIsNeutral) {
  const CsrMatrix a = random_uniform(50, 4, 17);
  std::vector<Triplet> eye;
  for (std::uint32_t i = 0; i < 50; ++i) eye.push_back({i, i, 1.0});
  const CsrMatrix identity = CsrMatrix::from_triplets(50, 50, std::move(eye));
  const CsrMatrix left = spgemm(identity, a, spgemm_pool());
  const CsrMatrix right = spgemm(a, identity, spgemm_pool());
  for (std::uint32_t r = 0; r < 50; ++r) {
    ASSERT_EQ(left.row_nnz(r), a.row_nnz(r));
    ASSERT_EQ(right.row_nnz(r), a.row_nnz(r));
    for (std::size_t k = 0; k < a.row_nnz(r); ++k) {
      EXPECT_DOUBLE_EQ(left.row_values(r)[k], a.row_values(r)[k]);
      EXPECT_DOUBLE_EQ(right.row_values(r)[k], a.row_values(r)[k]);
    }
  }
}

TEST(Spgemm, MatchesDenseReference) {
  const CsrMatrix a = random_uniform(40, 5, 3);
  const CsrMatrix b = random_uniform(40, 5, 4);
  const CsrMatrix c = spgemm(a, b, spgemm_pool());
  // Dense reference.
  std::vector<double> dense(40 * 40, 0.0);
  for (std::uint32_t i = 0; i < 40; ++i)
    for (std::size_t ka = 0; ka < a.row_nnz(i); ++ka) {
      const std::uint32_t k = a.row_cols(i)[ka];
      for (std::size_t kb = 0; kb < b.row_nnz(k); ++kb)
        dense[i * 40 + b.row_cols(k)[kb]] +=
            a.row_values(i)[ka] * b.row_values(k)[kb];
    }
  for (std::uint32_t i = 0; i < 40; ++i) {
    for (std::uint32_t j = 0; j < 40; ++j) {
      const double want = dense[i * 40 + j];
      double got = 0.0;
      const auto cols = c.row_cols(i);
      for (std::size_t k = 0; k < cols.size(); ++k)
        if (cols[k] == j) got = c.row_values(i)[k];
      EXPECT_NEAR(got, want, 1e-12) << i << "," << j;
    }
  }
}

TEST(Spgemm, RectangularChain) {
  const CsrMatrix a = lp_rectangular(30, 100, 4, 5);   // 30 x 100
  const CsrMatrix b = lp_rectangular(100, 20, 3, 6);   // 100 x 20
  const CsrMatrix c = spgemm(a, b, spgemm_pool());
  EXPECT_EQ(c.rows(), 30u);
  EXPECT_EQ(c.cols(), 20u);
  EXPECT_TRUE(c.well_formed());
}

TEST(Spgemm, DimensionMismatchRejected) {
  const CsrMatrix a = random_uniform(10, 2, 1);
  const CsrMatrix b = random_uniform(11, 2, 1);
  EXPECT_THROW(spgemm(a, b, spgemm_pool()), std::invalid_argument);
}

TEST(Spgemm, SquaringAdjacencyCountsPaths) {
  // Path 0-1-2 (undirected): A^2 counts 2-walks; (A^2)[0][2] = 1.
  const Graph g = graph_from_edges(3, std::vector<std::pair<std::uint32_t, std::uint32_t>>{{0, 1}, {1, 2}});
  const CsrMatrix a2 = spgemm(g.adjacency, g.adjacency, spgemm_pool());
  double zero_two = 0.0;
  const auto cols = a2.row_cols(0);
  for (std::size_t k = 0; k < cols.size(); ++k)
    if (cols[k] == 2) zero_two = a2.row_values(0)[k];
  EXPECT_DOUBLE_EQ(zero_two, 1.0);  // the common neighbor count of §V-A
}

TEST(Spgemm, FlopEstimate) {
  const CsrMatrix a = random_uniform(100, 4, 7);
  EXPECT_EQ(spgemm_flops(a, a) % 1, 0u);
  EXPECT_GT(spgemm_flops(a, a), a.nnz());
}

TEST(Spgemm, ChunkSizeInvariant) {
  const CsrMatrix a = random_uniform(200, 6, 8);
  SpgemmOptions small;
  small.row_chunk = 1;
  SpgemmOptions large;
  large.row_chunk = 1000;
  const CsrMatrix c1 = spgemm(a, a, spgemm_pool(), small);
  const CsrMatrix c2 = spgemm(a, a, spgemm_pool(), large);
  ASSERT_EQ(c1.nnz(), c2.nnz());
  for (std::uint32_t r = 0; r < 200; ++r)
    for (std::size_t k = 0; k < c1.row_nnz(r); ++k)
      EXPECT_DOUBLE_EQ(c1.row_values(r)[k], c2.row_values(r)[k]);
}

// --------------------------------------------------------------------- io --

TEST(MatrixMarket, ReadsGeneralReal) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "% a comment\n"
      "3 4 2\n"
      "1 1 2.5\n"
      "3 4 -1\n");
  const CsrMatrix m = read_matrix_market(in);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_EQ(m.nnz(), 2u);
  EXPECT_DOUBLE_EQ(m.row_values(0)[0], 2.5);
  EXPECT_EQ(m.row_cols(2)[0], 3u);
}

TEST(MatrixMarket, SymmetricExpandsBothTriangles) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "2 2 2\n"
      "1 1 1.0\n"
      "2 1 5.0\n");
  const CsrMatrix m = read_matrix_market(in);
  EXPECT_EQ(m.nnz(), 3u);  // diagonal once, off-diagonal twice
  EXPECT_DOUBLE_EQ(m.row_values(0)[1], 5.0);
  EXPECT_DOUBLE_EQ(m.row_values(1)[0], 5.0);
}

TEST(MatrixMarket, PatternGetsUnitValues) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 2 1\n"
      "2 2\n");
  const CsrMatrix m = read_matrix_market(in);
  EXPECT_DOUBLE_EQ(m.row_values(1)[0], 1.0);
}

TEST(MatrixMarket, RoundTrip) {
  const CsrMatrix original = random_uniform(60, 5, 3);
  std::stringstream buffer;
  write_matrix_market(buffer, original);
  const CsrMatrix back = read_matrix_market(buffer);
  ASSERT_EQ(back.nnz(), original.nnz());
  ASSERT_EQ(back.rows(), original.rows());
  for (std::uint32_t r = 0; r < original.rows(); ++r) {
    const auto a = original.row_cols(r);
    const auto b = back.row_cols(r);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t k = 0; k < a.size(); ++k) {
      EXPECT_EQ(a[k], b[k]);
      EXPECT_DOUBLE_EQ(original.row_values(r)[k], back.row_values(r)[k]);
    }
  }
}

TEST(MatrixMarket, RejectsMalformedInput) {
  std::istringstream no_banner("3 3 1\n1 1 1.0\n");
  EXPECT_THROW(read_matrix_market(no_banner), std::invalid_argument);

  std::istringstream bad_field(
      "%%MatrixMarket matrix coordinate complex general\n2 2 0\n");
  EXPECT_THROW(read_matrix_market(bad_field), std::invalid_argument);

  std::istringstream out_of_bounds(
      "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n");
  EXPECT_THROW(read_matrix_market(out_of_bounds), std::invalid_argument);

  std::istringstream truncated(
      "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n");
  EXPECT_THROW(read_matrix_market(truncated), std::invalid_argument);
}

TEST(MatrixMarket, FileHelpers) {
  const CsrMatrix m = random_uniform(20, 3, 9);
  const std::string path = "/tmp/p8repro_io_test.mtx";
  write_matrix_market_file(path, m);
  const CsrMatrix back = read_matrix_market_file(path);
  EXPECT_EQ(back.nnz(), m.nnz());
  EXPECT_THROW(read_matrix_market_file("/nonexistent/x.mtx"),
               std::invalid_argument);
}

TEST(Stats, BandwidthOfDiagonalIsZero) {
  std::vector<Triplet> t;
  for (std::uint32_t i = 0; i < 64; ++i) t.push_back({i, i, 1.0});
  const CsrMatrix m = CsrMatrix::from_triplets(64, 64, std::move(t));
  EXPECT_DOUBLE_EQ(normalized_bandwidth(m), 0.0);
}

}  // namespace
}  // namespace p8::graph
