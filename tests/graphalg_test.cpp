// Tests for the SpMV-based ranking algorithms (PageRank, HITS, random
// walk with restart).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "graph/rmat.hpp"
#include "graphalg/ranking.hpp"

namespace p8::graphalg {
namespace {

common::ThreadPool& pool() {
  static common::ThreadPool p(3);
  return p;
}

graph::CsrMatrix directed(std::uint32_t n,
                          std::initializer_list<std::pair<int, int>> edges) {
  std::vector<graph::Triplet> t;
  for (const auto& [u, v] : edges)
    t.push_back({static_cast<std::uint32_t>(u),
                 static_cast<std::uint32_t>(v), 1.0});
  return graph::CsrMatrix::from_triplets(n, n, std::move(t));
}

double sum(std::span<const double> v) {
  double s = 0.0;
  for (const double x : v) s += x;
  return s;
}

// ---------------------------------------------------- TransitionOperator --

TEST(Transition, ColumnsAreStochastic) {
  const auto a = directed(3, {{0, 1}, {0, 2}, {1, 2}});
  const TransitionOperator op(a);
  // Column j of T sums to 1 for non-dangling j: check via apply on
  // basis vectors.
  std::vector<double> x(3, 0.0);
  std::vector<double> y(3);
  x[0] = 1.0;
  op.apply(x, y, pool());
  EXPECT_NEAR(sum(y), 1.0, 1e-12);
  EXPECT_NEAR(y[1], 0.5, 1e-12);
  EXPECT_NEAR(y[2], 0.5, 1e-12);
}

TEST(Transition, DanglingMassRedistributed) {
  // Vertex 2 has no out-edges.
  const auto a = directed(3, {{0, 2}, {1, 2}});
  const TransitionOperator op(a);
  ASSERT_EQ(op.dangling().size(), 1u);
  EXPECT_EQ(op.dangling()[0], 2u);
  std::vector<double> x{0.0, 0.0, 1.0};
  std::vector<double> y(3);
  op.apply(x, y, pool());
  for (const double v : y) EXPECT_NEAR(v, 1.0 / 3.0, 1e-12);
}

// ------------------------------------------------------------- PageRank ---

TEST(PageRank, TwoNodeCycleIsUniform) {
  const auto a = directed(2, {{0, 1}, {1, 0}});
  const auto r = pagerank(TransitionOperator(a), pool());
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.scores[0], 0.5, 1e-9);
  EXPECT_NEAR(r.scores[1], 0.5, 1e-9);
}

TEST(PageRank, ScoresSumToOne) {
  graph::RmatOptions o;
  o.scale = 10;
  o.edge_factor = 8;
  const auto a = graph::rmat_adjacency(o);
  const auto r = pagerank(TransitionOperator(a), pool());
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(sum(r.scores), 1.0, 1e-8);
}

TEST(PageRank, HubReceivesMoreRank) {
  // Everyone points to vertex 0; vertex 0 points back to 1 only.
  const auto a = directed(4, {{1, 0}, {2, 0}, {3, 0}, {0, 1}});
  const auto r = pagerank(TransitionOperator(a), pool());
  ASSERT_TRUE(r.converged);
  EXPECT_GT(r.scores[0], r.scores[2]);
  EXPECT_GT(r.scores[1], r.scores[2]);  // fed by the hub
  EXPECT_NEAR(r.scores[2], r.scores[3], 1e-10);
}

TEST(PageRank, ClassicThreePageExample) {
  // A->B, A->C, B->C, C->A (a standard worked example).
  const auto a = directed(3, {{0, 1}, {0, 2}, {1, 2}, {2, 0}});
  const auto r = pagerank(TransitionOperator(a), pool());
  ASSERT_TRUE(r.converged);
  // C collects from both A and B and must rank first; A (fed by C)
  // second; B last.
  EXPECT_GT(r.scores[2], r.scores[0]);
  EXPECT_GT(r.scores[0], r.scores[1]);
  // Known fixed point (d = 0.85): approximately 0.3878/0.2148/0.3974.
  EXPECT_NEAR(r.scores[0], 0.3878, 3e-3);
  EXPECT_NEAR(r.scores[1], 0.2148, 3e-3);
  EXPECT_NEAR(r.scores[2], 0.3974, 3e-3);
}

TEST(PageRank, DanglingGraphStillSumsToOne) {
  const auto a = directed(4, {{0, 1}, {1, 2}, {2, 3}});  // 3 dangles
  const auto r = pagerank(TransitionOperator(a), pool());
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(sum(r.scores), 1.0, 1e-8);
}

TEST(PageRank, DampingValidation) {
  const auto a = directed(2, {{0, 1}, {1, 0}});
  PowerIterOptions bad;
  bad.damping = 1.0;
  EXPECT_THROW(pagerank(TransitionOperator(a), pool(), bad),
               std::invalid_argument);
}

// ------------------------------------------------------------------ RWR ---

TEST(Rwr, SeedScoresHighest) {
  graph::RmatOptions o;
  o.scale = 9;
  o.edge_factor = 8;
  const auto a = graph::rmat_adjacency(o);
  const TransitionOperator op(a);
  const std::uint32_t seed = 5;
  const auto r = random_walk_with_restart(op, seed, pool());
  ASSERT_TRUE(r.converged);
  const auto best =
      std::max_element(r.scores.begin(), r.scores.end()) - r.scores.begin();
  EXPECT_EQ(static_cast<std::uint32_t>(best), seed);
}

TEST(Rwr, ProximityOrdersScores) {
  // Path 0 -> 1 -> 2 -> 3: from seed 0, closer vertices score higher.
  const auto a = directed(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  const auto r = random_walk_with_restart(TransitionOperator(a), 0, pool());
  ASSERT_TRUE(r.converged);
  EXPECT_GT(r.scores[0], r.scores[1]);
  EXPECT_GT(r.scores[1], r.scores[2]);
  EXPECT_GT(r.scores[2], r.scores[3]);
}

TEST(Rwr, SeedValidation) {
  const auto a = directed(2, {{0, 1}, {1, 0}});
  EXPECT_THROW(
      random_walk_with_restart(TransitionOperator(a), 7, pool()),
      std::invalid_argument);
}

// ----------------------------------------------------------------- HITS ---

TEST(Hits, BipartiteHubsAndAuthorities) {
  // 0 and 1 point at 2 and 3: pure hubs vs pure authorities.
  const auto a = directed(4, {{0, 2}, {0, 3}, {1, 2}, {1, 3}});
  const auto r = hits(a, pool());
  ASSERT_TRUE(r.converged);
  EXPECT_GT(r.hubs[0], 0.1);
  EXPECT_NEAR(r.hubs[0], r.hubs[1], 1e-9);
  EXPECT_NEAR(r.hubs[2], 0.0, 1e-9);
  EXPECT_GT(r.authorities[2], 0.1);
  EXPECT_NEAR(r.authorities[2], r.authorities[3], 1e-9);
  EXPECT_NEAR(r.authorities[0], 0.0, 1e-9);
}

TEST(Hits, VectorsAreUnitNorm) {
  graph::RmatOptions o;
  o.scale = 9;
  const auto a = graph::rmat_adjacency(o);
  const auto r = hits(a, pool());
  double h = 0.0;
  double au = 0.0;
  for (const double v : r.hubs) h += v * v;
  for (const double v : r.authorities) au += v * v;
  EXPECT_NEAR(h, 1.0, 1e-9);
  EXPECT_NEAR(au, 1.0, 1e-9);
}

TEST(Hits, PointingAtAnAuthorityMakesAHub) {
  // 0 -> {1, 2, 3}; 4 -> 1.  Vertex 0 links to everything and must be
  // the top hub; 1 gets two in-links and tops authority.
  const auto a = directed(5, {{0, 1}, {0, 2}, {0, 3}, {4, 1}});
  const auto r = hits(a, pool());
  const auto top_hub =
      std::max_element(r.hubs.begin(), r.hubs.end()) - r.hubs.begin();
  const auto top_auth =
      std::max_element(r.authorities.begin(), r.authorities.end()) -
      r.authorities.begin();
  EXPECT_EQ(top_hub, 0);
  EXPECT_EQ(top_auth, 1);
}

}  // namespace
}  // namespace p8::graphalg
