// Tests for the Hartree-Fock library: integrals, screening, the Fock
// builders (fast vs brute force), and full SCF runs in both ERI modes.
#include <gtest/gtest.h>

#include <cmath>

#include "hf/basis.hpp"
#include "hf/integrals.hpp"
#include "hf/scf.hpp"

namespace p8::hf {
namespace {

common::ThreadPool& pool() {
  static common::ThreadPool p(2);
  return p;
}

// ----------------------------------------------------------------- boys ----

TEST(Boys, LimitsAndValues) {
  EXPECT_NEAR(boys_f0(0.0), 1.0, 1e-12);
  EXPECT_NEAR(boys_f0(1e-12), 1.0, 1e-9);
  // F0(1) = 0.5*sqrt(pi)*erf(1) = 0.7468...
  EXPECT_NEAR(boys_f0(1.0), 0.746824132812427, 1e-12);
  // Large-x asymptote: sqrt(pi/x)/2.
  EXPECT_NEAR(boys_f0(100.0), 0.5 * std::sqrt(M_PI / 100.0), 1e-12);
}

TEST(Boys, MonotoneDecreasing) {
  double prev = boys_f0(1e-6);
  for (double x = 0.01; x < 50.0; x *= 2.0) {
    const double f = boys_f0(x);
    EXPECT_LT(f, prev);
    prev = f;
  }
}

// ------------------------------------------------------------ integrals ----

TEST(Integrals, ContractedFunctionsAreNormalized) {
  const Molecule m = h2();
  const BasisSet basis = BasisSet::build(m);
  for (std::size_t i = 0; i < basis.size(); ++i)
    EXPECT_NEAR(overlap(basis[i], basis[i]), 1.0, 2e-3) << "fn " << i;
}

TEST(Integrals, OverlapDecaysWithDistance) {
  double prev = 1.0;
  for (const double r : {1.0, 2.0, 4.0, 8.0}) {
    const Molecule m = h2(r);
    const BasisSet b = BasisSet::build(m);
    const double s = overlap(b[0], b[1]);
    EXPECT_LT(s, prev);
    EXPECT_GT(s, 0.0);
    prev = s;
  }
}

TEST(Integrals, MatricesAreSymmetric) {
  const Molecule m = alkane(2);
  const BasisSet b = BasisSet::build(m);
  const la::Matrix s = overlap_matrix(b);
  const la::Matrix t = kinetic_matrix(b);
  const la::Matrix v = nuclear_matrix(b, m);
  for (std::size_t i = 0; i < b.size(); ++i)
    for (std::size_t j = 0; j < b.size(); ++j) {
      EXPECT_NEAR(s(i, j), s(j, i), 1e-14);
      EXPECT_NEAR(t(i, j), t(j, i), 1e-14);
      EXPECT_NEAR(v(i, j), v(j, i), 1e-14);
    }
}

TEST(Integrals, KineticIsPositiveOnDiagonal) {
  const BasisSet b = BasisSet::build(alkane(1));
  for (std::size_t i = 0; i < b.size(); ++i)
    EXPECT_GT(kinetic(b[i], b[i]), 0.0);
}

TEST(Integrals, NuclearAttractionIsNegative) {
  const Molecule m = h2();
  const BasisSet b = BasisSet::build(m);
  for (std::size_t i = 0; i < b.size(); ++i)
    EXPECT_LT(nuclear(b[i], b[i], m.atoms[0].position, 1), 0.0);
}

TEST(Integrals, EriPermutationalSymmetry) {
  const BasisSet b = BasisSet::build(dna_fragment(1));
  ASSERT_GE(b.size(), 4u);
  const double g = eri(b[0], b[1], b[2], b[3]);
  EXPECT_NEAR(eri(b[1], b[0], b[2], b[3]), g, 1e-12);
  EXPECT_NEAR(eri(b[0], b[1], b[3], b[2]), g, 1e-12);
  EXPECT_NEAR(eri(b[2], b[3], b[0], b[1]), g, 1e-12);
  EXPECT_NEAR(eri(b[3], b[2], b[1], b[0]), g, 1e-12);
}

TEST(Integrals, EriDiagonalPositive) {
  const BasisSet b = BasisSet::build(h2());
  EXPECT_GT(eri(b[0], b[0], b[0], b[0]), 0.0);
  EXPECT_GT(eri(b[0], b[1], b[0], b[1]), 0.0);
}

TEST(Integrals, PairEriMatchesReference) {
  // The shell-pair fast path must agree with the direct contraction.
  const BasisSet b = BasisSet::build(dna_fragment(1));
  const std::size_t n = std::min<std::size_t>(b.size(), 6);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j <= i; ++j)
      for (std::size_t k = 0; k < n; ++k)
        for (std::size_t l = 0; l <= k; ++l) {
          const ShellPair ij = make_shell_pair(b[i], b[j]);
          const ShellPair kl = make_shell_pair(b[k], b[l]);
          EXPECT_NEAR(eri(ij, kl), eri(b[i], b[j], b[k], b[l]), 1e-12);
        }
}

TEST(Integrals, ShellPairPrimitiveCount) {
  const BasisSet b = BasisSet::build(h2());
  const ShellPair p = make_shell_pair(b[0], b[1]);
  EXPECT_EQ(p.primitives.size(),
            b[0].primitives.size() * b[1].primitives.size());
}

TEST(Integrals, SchwarzInequalityHolds) {
  const BasisSet b = BasisSet::build(alkane(1));
  for (std::size_t i = 0; i < b.size(); ++i)
    for (std::size_t j = 0; j < b.size(); ++j)
      for (std::size_t k = 0; k < b.size(); ++k)
        for (std::size_t l = 0; l < b.size(); ++l) {
          const double g = std::abs(eri(b[i], b[j], b[k], b[l]));
          const double bound =
              std::sqrt(eri(b[i], b[j], b[i], b[j])) *
              std::sqrt(eri(b[k], b[l], b[k], b[l]));
          EXPECT_LE(g, bound + 1e-10);
        }
}

// ------------------------------------------------------------- molecules ---

TEST(Molecules, ElectronCountsAreEven) {
  EXPECT_EQ(h2().electrons() % 2, 0);
  EXPECT_EQ(alkane(3).electrons() % 2, 0);
  EXPECT_EQ(graphene(4).electrons() % 2, 0);
  EXPECT_EQ(dna_fragment(2).electrons() % 2, 0);
  EXPECT_EQ(protein_cluster(9, 3).electrons() % 2, 0);
}

TEST(Molecules, AlkaneComposition) {
  const Molecule m = alkane(4);
  int carbons = 0;
  int hydrogens = 0;
  for (const auto& a : m.atoms) {
    if (a.atomic_number == 6) ++carbons;
    if (a.atomic_number == 1) ++hydrogens;
  }
  EXPECT_EQ(carbons, 4);
  EXPECT_EQ(hydrogens, 2 * 4 + 2);
}

TEST(Molecules, NuclearRepulsionPositiveAndDecaying) {
  EXPECT_GT(h2(1.0).nuclear_repulsion(), h2(2.0).nuclear_repulsion());
  EXPECT_NEAR(h2(1.4).nuclear_repulsion(), 1.0 / 1.4, 1e-12);
}

TEST(Molecules, AtomsAreSeparated) {
  for (const Molecule& m :
       {alkane(6), graphene(6), dna_fragment(3), protein_cluster(20, 7)}) {
    for (std::size_t i = 0; i < m.atoms.size(); ++i)
      for (std::size_t j = i + 1; j < m.atoms.size(); ++j)
        EXPECT_GT(distance_sq(m.atoms[i].position, m.atoms[j].position), 0.5)
            << m.name << " atoms " << i << "," << j;
  }
}

TEST(Molecules, DoubleZetaGrowsBasis) {
  const Molecule m = alkane(2);
  const std::size_t single = BasisSet::build(m).size();
  BasisOptions dz;
  dz.double_zeta = true;
  EXPECT_EQ(BasisSet::build(m, dz).size(), single + m.atoms.size());
}

// ------------------------------------------------------------------- SCF ---

TEST(Scf, H2EnergyMatchesLiterature) {
  // RHF/STO-3G at 1.4 bohr: -1.11671 hartree (Szabo & Ostlund).
  ScfSolver solver(h2(), pool());
  const ScfResult r = solver.run();
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.energy, -1.1167, 2e-3);
}

TEST(Scf, FastFockMatchesBruteForce) {
  for (const Molecule& m : {h2(), alkane(1), dna_fragment(1)}) {
    ScfSolver solver(m, pool());
    const la::Matrix p = solver.density_from_fock(
        core_hamiltonian(solver.basis(), solver.molecule()));
    const la::Matrix ref = solver.fock_reference(p);
    const la::Matrix fast = solver.fock(p, 0.0);
    EXPECT_LT(ref.distance(fast), 1e-10) << m.name;
  }
}

TEST(Scf, ListFockMatchesRecompute) {
  ScfSolver solver(alkane(1), pool());
  const la::Matrix p = solver.density_from_fock(
      core_hamiltonian(solver.basis(), solver.molecule()));
  const auto list = solver.precompute_eris(1e-12);
  EXPECT_LT(solver.fock(p, 1e-12).distance(solver.fock_from_list(p, list)),
            1e-10);
}

TEST(Scf, ScreeningIsMonotoneInTolerance) {
  ScfSolver solver(alkane(3), pool());
  const auto loose = solver.count_nonscreened(1e-6);
  const auto tight = solver.count_nonscreened(1e-12);
  const auto none = solver.count_nonscreened(0.0);
  EXPECT_LE(loose, tight);
  EXPECT_LE(tight, none);
  const std::size_t n = solver.basis().size();
  const std::size_t pairs = n * (n + 1) / 2;
  EXPECT_EQ(none, pairs * (pairs + 1) / 2);
}

TEST(Scf, ScreeningDropsFarQuartetsOnChains) {
  // A long chain has many far-apart shell pairs: screening must bite.
  ScfSolver solver(alkane(6), pool());
  const auto kept = solver.count_nonscreened(1e-10);
  const auto all = solver.count_nonscreened(0.0);
  EXPECT_LT(kept, all);
}

TEST(Scf, PrecomputeCountMatchesCounter) {
  ScfSolver solver(alkane(2), pool());
  const double tol = 1e-10;
  EXPECT_EQ(solver.precompute_eris(tol).size(),
            solver.count_nonscreened(tol));
}

TEST(Scf, BothModesAgreeOnEnergy) {
  ScfSolver solver(dna_fragment(1), pool());
  ScfOptions comp;
  comp.mode = EriMode::kRecompute;
  ScfOptions mem;
  mem.mode = EriMode::kPrecompute;
  const ScfResult a = solver.run(comp);
  const ScfResult b = solver.run(mem);
  ASSERT_TRUE(a.converged);
  ASSERT_TRUE(b.converged);
  EXPECT_NEAR(a.energy, b.energy, 1e-6);
  EXPECT_EQ(b.eri_bytes, b.eri_count * sizeof(PackedEri));
}

TEST(Scf, DensityTraceCountsElectrons) {
  const Molecule m = alkane(1);
  ScfSolver solver(m, pool());
  const ScfResult r = solver.run();
  // tr(P S) = N_electrons.
  const la::Matrix s = overlap_matrix(solver.basis());
  EXPECT_NEAR(la::trace_product(r.density, s),
              static_cast<double>(m.electrons()), 1e-6);
}

TEST(Scf, EnergyIsBelowCoreGuess) {
  // SCF must lower the energy relative to the first iteration estimate
  // and converge to something negative.
  ScfSolver solver(alkane(1), pool());
  const ScfResult r = solver.run();
  EXPECT_TRUE(r.converged);
  EXPECT_LT(r.energy, 0.0);
}

TEST(Scf, TimingsArePopulated) {
  ScfSolver solver(h2(), pool());
  ScfOptions mem;
  mem.mode = EriMode::kPrecompute;
  const ScfResult r = solver.run(mem);
  EXPECT_GE(r.timings.precompute_s, 0.0);
  EXPECT_GT(r.timings.total_s, 0.0);
  EXPECT_GT(r.iterations, 0);
}

TEST(Scf, RejectsOddElectronCount) {
  Molecule m;
  m.name = "H";
  m.atoms.push_back({1, {0, 0, 0}});
  EXPECT_THROW(ScfSolver(m, pool()), std::invalid_argument);
}

TEST(Scf, LooseScreeningBarelyMovesEnergy) {
  ScfSolver solver(alkane(2), pool());
  ScfOptions tight;
  tight.screen_tolerance = 1e-12;
  ScfOptions loose;
  loose.screen_tolerance = 1e-7;
  const double e_tight = solver.run(tight).energy;
  const double e_loose = solver.run(loose).energy;
  EXPECT_NEAR(e_tight, e_loose, 1e-4);
}

TEST(Scf, DoubleZetaIsVariational) {
  // Enlarging the basis can only lower the converged RHF energy (the
  // variational principle) — a strong end-to-end correctness check on
  // integrals + SCF together.
  for (const Molecule& m : {h2(), alkane(1)}) {
    common::ThreadPool& p = pool();
    ScfSolver small(m, p);
    BasisOptions dz;
    dz.double_zeta = true;
    ScfSolver big(m, p, dz);
    const double e_small = small.run().energy;
    const double e_big = big.run().energy;
    EXPECT_LE(e_big, e_small + 1e-9) << m.name;
  }
}

TEST(Scf, EnergyInvariantToThreadCount) {
  // Parallel Fock accumulation must not change the physics.
  const Molecule m = alkane(1);
  common::ThreadPool p1(1);
  common::ThreadPool p4(4);
  ScfSolver s1(m, p1);
  ScfSolver s4(m, p4);
  EXPECT_NEAR(s1.run().energy, s4.run().energy, 1e-9);
}

TEST(Scf, PurificationDensityMatchesDiagonalization) {
  ScfSolver solver(alkane(1), pool());
  const la::Matrix f = core_hamiltonian(solver.basis(), solver.molecule());
  const la::Matrix via_diag =
      solver.density_from_fock(f, DensityMethod::kDiagonalize);
  const la::Matrix via_purify =
      solver.density_from_fock(f, DensityMethod::kPurify);
  EXPECT_LT(via_diag.distance(via_purify), 1e-5);
}

TEST(Scf, PurificationScfMatchesDiagonalizationScf) {
  ScfSolver solver(alkane(2), pool());
  ScfOptions diag;
  ScfOptions pur;
  pur.density = DensityMethod::kPurify;
  const double e_diag = solver.run(diag).energy;
  const ScfResult r_pur = solver.run(pur);
  ASSERT_TRUE(r_pur.converged);
  EXPECT_NEAR(r_pur.energy, e_diag, 1e-5);
}

TEST(Scf, DiisConvergesAtLeastAsFast) {
  ScfSolver solver(dna_fragment(1), pool());
  ScfOptions plain;
  ScfOptions accelerated;
  accelerated.diis = true;
  const ScfResult a = solver.run(plain);
  const ScfResult b = solver.run(accelerated);
  ASSERT_TRUE(a.converged);
  ASSERT_TRUE(b.converged);
  EXPECT_LE(b.iterations, a.iterations);
  EXPECT_NEAR(a.energy, b.energy, 1e-6);
}

TEST(Scf, DiisErrorVanishesAtConvergence) {
  ScfSolver solver(alkane(1), pool());
  ScfOptions opt;
  opt.convergence = 1e-9;
  opt.diis = true;
  const ScfResult r = solver.run(opt);
  ASSERT_TRUE(r.converged);
  const la::Matrix f = solver.fock(r.density, 1e-12);
  EXPECT_LT(solver.diis_error(f, r.density).max_abs(), 1e-6);
}

TEST(Scf, DiisWorksWithPrecompute) {
  ScfSolver solver(alkane(2), pool());
  ScfOptions opt;
  opt.diis = true;
  opt.mode = EriMode::kPrecompute;
  const ScfResult r = solver.run(opt);
  ASSERT_TRUE(r.converged);
  EXPECT_LT(r.energy, 0.0);
}

class ScfMolecules : public ::testing::TestWithParam<int> {};

TEST_P(ScfMolecules, AlkanesConvergeAndScale) {
  const int n = GetParam();
  ScfSolver solver(alkane(n), pool());
  const ScfResult r = solver.run();
  EXPECT_TRUE(r.converged) << "alkane-" << n;
  EXPECT_LT(r.energy, 0.0);
  // Energy roughly extensive: more carbons, lower energy.
  if (n > 1) {
    ScfSolver smaller(alkane(n - 1), pool());
    EXPECT_LT(r.energy, smaller.run().energy);
  }
}

INSTANTIATE_TEST_SUITE_P(Chains, ScfMolecules, ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace p8::hf
