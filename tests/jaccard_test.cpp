// Tests for the all-pairs Jaccard similarity kernel.
#include <gtest/gtest.h>

#include <map>

#include "common/stats.hpp"
#include "graph/rmat.hpp"
#include "graph/spgemm.hpp"
#include "jaccard/jaccard.hpp"
#include "jaccard/minhash.hpp"

namespace p8::jaccard {
namespace {

graph::Graph path_graph(std::uint32_t n) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  for (std::uint32_t v = 0; v + 1 < n; ++v) edges.push_back({v, v + 1});
  return graph::graph_from_edges(n, edges);
}

graph::Graph clique(std::uint32_t n) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  for (std::uint32_t u = 0; u < n; ++u)
    for (std::uint32_t v = u + 1; v < n; ++v) edges.push_back({u, v});
  return graph::graph_from_edges(n, edges);
}

graph::Graph star(std::uint32_t leaves) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  for (std::uint32_t v = 1; v <= leaves; ++v) edges.push_back({0, v});
  return graph::graph_from_edges(leaves + 1, edges);
}

std::map<std::pair<std::uint32_t, std::uint32_t>, double> as_map(
    const Result& r) {
  std::map<std::pair<std::uint32_t, std::uint32_t>, double> out;
  const auto& m = r.similarities;
  for (std::uint32_t i = 0; i < m.rows(); ++i) {
    const auto cols = m.row_cols(i);
    const auto vals = m.row_values(i);
    for (std::size_t k = 0; k < cols.size(); ++k)
      out[{i, cols[k]}] = vals[k];
  }
  return out;
}

TEST(PairSimilarity, PathEndpointsShareMiddle) {
  // 0-1-2: N(0)={1}, N(2)={1} -> J = 1/1.
  const auto g = path_graph(3);
  EXPECT_DOUBLE_EQ(pair_similarity(g, 0, 2), 1.0);
}

TEST(PairSimilarity, AdjacentPathVerticesShareNothing) {
  // N(0)={1}, N(1)={0,2}: intersection empty.
  const auto g = path_graph(3);
  EXPECT_DOUBLE_EQ(pair_similarity(g, 0, 1), 0.0);
}

TEST(PairSimilarity, CliqueValue) {
  // In K4: N(i) and N(j) share the other 2 vertices; union has 4
  // elements (i and j are in each other's neighborhoods).
  const auto g = clique(4);
  EXPECT_DOUBLE_EQ(pair_similarity(g, 0, 1), 2.0 / 4.0);
}

TEST(PairSimilarity, StarLeaves) {
  // Leaves share the hub exactly: J = 1.
  const auto g = star(5);
  EXPECT_DOUBLE_EQ(pair_similarity(g, 1, 2), 1.0);
  // Hub vs leaf: N(hub) = leaves, N(leaf) = {hub}: disjoint.
  EXPECT_DOUBLE_EQ(pair_similarity(g, 0, 1), 0.0);
}

TEST(AllPairs, MatchesBruteForceOnRmat) {
  graph::RmatOptions o;
  o.scale = 8;
  o.edge_factor = 6;
  const auto g = graph::rmat_graph(o);
  common::ThreadPool pool(4);
  const auto result = all_pairs(g, pool);
  const auto got = as_map(result);

  // Brute force over all pairs.
  std::size_t expected_pairs = 0;
  for (std::uint32_t i = 0; i < g.vertices(); ++i)
    for (std::uint32_t j = i + 1; j < g.vertices(); ++j) {
      const double want = pair_similarity(g, i, j);
      const auto it = got.find({i, j});
      if (want > 0.0) {
        ++expected_pairs;
        ASSERT_NE(it, got.end()) << i << "," << j;
        EXPECT_NEAR(it->second, want, 1e-12);
      } else {
        EXPECT_EQ(it, got.end()) << i << "," << j;
      }
    }
  EXPECT_EQ(got.size(), expected_pairs);
}

TEST(AllPairs, UpperTriangleOnly) {
  const auto g = clique(6);
  common::ThreadPool pool(2);
  const auto result = all_pairs(g, pool);
  const auto& m = result.similarities;
  for (std::uint32_t i = 0; i < m.rows(); ++i)
    for (const std::uint32_t j : m.row_cols(i)) EXPECT_GT(j, i);
}

TEST(AllPairs, CliquePairCount) {
  const auto g = clique(8);
  common::ThreadPool pool(2);
  const auto result = all_pairs(g, pool);
  EXPECT_EQ(result.similarities.nnz(), 8u * 7 / 2);
}

TEST(AllPairs, MinSimilarityFilters) {
  graph::RmatOptions o;
  o.scale = 8;
  o.edge_factor = 6;
  const auto g = graph::rmat_graph(o);
  common::ThreadPool pool(2);
  Options strict;
  strict.min_similarity = 0.5;
  const auto all = all_pairs(g, pool);
  const auto filtered = all_pairs(g, pool, strict);
  EXPECT_LT(filtered.similarities.nnz(), all.similarities.nnz());
  for (std::uint32_t i = 0; i < filtered.similarities.rows(); ++i)
    for (const double v : filtered.similarities.row_values(i))
      EXPECT_GE(v, 0.5);
}

TEST(AllPairs, OutputBytesReported) {
  const auto g = clique(16);
  common::ThreadPool pool(2);
  const auto result = all_pairs(g, pool);
  EXPECT_EQ(result.output_bytes, result.similarities.memory_bytes());
  EXPECT_GT(result.pairs_evaluated, 0u);
}

TEST(AllPairs, OutputLargerThanInputOnScaleFree) {
  // The Figure 10 phenomenon: the similarity matrix dwarfs the graph.
  graph::RmatOptions o;
  o.scale = 10;
  o.edge_factor = 8;
  const auto g = graph::rmat_graph(o);
  common::ThreadPool pool(4);
  const auto result = all_pairs(g, pool);
  EXPECT_GT(result.output_bytes, 2 * g.adjacency.memory_bytes());
}

TEST(AllPairs, SimilaritiesAreProbabilities) {
  graph::RmatOptions o;
  o.scale = 9;
  const auto g = graph::rmat_graph(o);
  common::ThreadPool pool(2);
  const auto result = all_pairs(g, pool);
  for (std::uint32_t i = 0; i < result.similarities.rows(); ++i)
    for (const double v : result.similarities.row_values(i)) {
      EXPECT_GT(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
}

TEST(AllPairs, EmptyGraph) {
  const graph::Graph g = graph::graph_from_edges(10, {});
  common::ThreadPool pool(2);
  const auto result = all_pairs(g, pool);
  EXPECT_EQ(result.similarities.nnz(), 0u);
}

TEST(AllPairs, AgreesWithAdjacencySquaring) {
  // §V-A's framing: common-neighbor counts are the entries of A^2.
  // Rebuild the similarities from the general SpGEMM and compare.
  graph::RmatOptions o;
  o.scale = 9;
  o.edge_factor = 8;
  const auto g = graph::rmat_graph(o);
  common::ThreadPool pool(3);
  const auto direct = as_map(all_pairs(g, pool));

  const graph::CsrMatrix a2 =
      graph::spgemm(g.adjacency, g.adjacency, pool);
  std::size_t checked = 0;
  for (std::uint32_t i = 0; i < a2.rows(); ++i) {
    const auto cols = a2.row_cols(i);
    const auto vals = a2.row_values(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      const std::uint32_t j = cols[k];
      if (j <= i) continue;  // upper triangle, off-diagonal
      const double common = vals[k];
      const double uni = static_cast<double>(g.degree(i)) +
                         static_cast<double>(g.degree(j)) - common;
      const auto it = direct.find({i, j});
      ASSERT_NE(it, direct.end()) << i << "," << j;
      EXPECT_NEAR(it->second, common / uni, 1e-12);
      ++checked;
    }
  }
  EXPECT_EQ(checked, direct.size());
}

TEST(AllPairs, StaticScheduleSameResultWorseBalance) {
  graph::RmatOptions o;
  o.scale = 10;
  o.edge_factor = 8;
  const auto g = graph::rmat_graph(o);
  common::ThreadPool pool(8);
  Options dynamic;
  // Chunks must be small relative to rows/worker for dynamic
  // scheduling to balance (1024 rows over 8 workers here).
  dynamic.row_chunk = 8;
  Options fixed;
  fixed.dynamic_schedule = false;
  const auto a = all_pairs(g, pool, dynamic);
  const auto b = all_pairs(g, pool, fixed);
  // Identical mathematics...
  EXPECT_EQ(as_map(a), as_map(b));
  // ...but the static split's largest task dwarfs the dynamic chunks
  // on a power-law input (SpGEMM row work is quadratic in degree).
  EXPECT_GT(b.max_task_share, 2.0 * a.max_task_share);
  EXPECT_LT(a.max_task_share, 1.0);
  EXPECT_GT(b.max_task_share, 1.0);
}

// ---------------------------------------------------------------- minhash --

TEST(MinHash, IdenticalSetsAgreeEverywhere) {
  // Two leaves of a star share exactly the hub: J = 1, so every
  // signature position must collide.
  const auto g = star(6);
  common::ThreadPool pool(2);
  const MinHash mh(64);
  const auto sig = mh.signatures(g, pool);
  const std::span<const std::uint64_t> s(sig);
  EXPECT_DOUBLE_EQ(
      MinHash::estimate(s.subspan(1 * 64, 64), s.subspan(2 * 64, 64)), 1.0);
}

TEST(MinHash, DisjointSetsRarelyAgree) {
  // Two disconnected edges: N(0)={1}, N(2)={3}: J = 0.
  const auto g = graph::graph_from_edges(
      4, std::vector<std::pair<std::uint32_t, std::uint32_t>>{{0, 1},
                                                              {2, 3}});
  common::ThreadPool pool(2);
  const MinHash mh(128);
  const auto sig = mh.signatures(g, pool);
  const std::span<const std::uint64_t> s(sig);
  EXPECT_LT(
      MinHash::estimate(s.subspan(0 * 128, 128), s.subspan(2 * 128, 128)),
      0.05);
}

TEST(MinHash, EstimateTracksExactSimilarity) {
  graph::RmatOptions o;
  o.scale = 9;
  o.edge_factor = 10;
  const auto g = graph::rmat_graph(o);
  common::ThreadPool pool(2);
  const MinHash mh(256);
  const auto sig = mh.signatures(g, pool);
  const std::span<const std::uint64_t> s(sig);
  // Sample vertex pairs with meaningful exact similarity and check the
  // estimator's error (stddev ~ sqrt(J(1-J)/k) ~ 0.03 at k=256).
  common::RunningStats error;
  for (std::uint32_t i = 0; i < 60; ++i) {
    for (std::uint32_t j = i + 1; j < i + 6 && j < g.vertices(); ++j) {
      if (g.degree(i) == 0 || g.degree(j) == 0) continue;
      const double exact = pair_similarity(g, i, j);
      const double approx =
          MinHash::estimate(s.subspan(i * 256, 256), s.subspan(j * 256, 256));
      error.add(std::abs(exact - approx));
    }
  }
  EXPECT_LT(error.mean(), 0.05);
  EXPECT_LT(error.max(), 0.2);
}

TEST(MinHash, DeterministicBySeed) {
  const auto g = star(4);
  common::ThreadPool pool(2);
  EXPECT_EQ(MinHash(32, 5).signatures(g, pool),
            MinHash(32, 5).signatures(g, pool));
  EXPECT_NE(MinHash(32, 5).signatures(g, pool),
            MinHash(32, 6).signatures(g, pool));
}

TEST(MinHash, Validation) {
  EXPECT_THROW(MinHash(0), std::invalid_argument);
  std::vector<std::uint64_t> a(4);
  std::vector<std::uint64_t> b(5);
  EXPECT_THROW(MinHash::estimate(a, b), std::invalid_argument);
}

TEST(Lsh, FindsHighSimilarityPairs) {
  // Every pair LSH returns is verified exact; and the recall against
  // the exact all-pairs result should be high for J >= 0.7.
  graph::RmatOptions o;
  o.scale = 9;
  o.edge_factor = 10;
  const auto g = graph::rmat_graph(o);
  common::ThreadPool pool(2);

  Options exact_opts;
  exact_opts.min_similarity = 0.7;
  const auto exact = all_pairs(g, pool, exact_opts);

  const MinHash mh(64);
  LshOptions lsh_opts;
  lsh_opts.bands = 16;
  lsh_opts.rows_per_band = 4;
  lsh_opts.threshold = 0.7;
  const auto approx = lsh_similar_pairs(g, mh, pool, lsh_opts);

  // Precision is 1.0 by construction (verified); check values.
  for (const auto& t : approx.pairs) {
    EXPECT_GE(t.value, 0.7);
    EXPECT_NEAR(t.value, pair_similarity(g, t.row, t.col), 1e-12);
  }
  // Recall: banding with 16 bands of 4 rows catches J=0.7 pairs with
  // probability 1-(1-0.7^4)^16 ~ 0.99.
  EXPECT_GE(approx.pairs.size(), exact.similarities.nnz() * 85 / 100);
  // And it should have looked at far fewer pairs than the full product.
  const double all_pairs_count =
      0.5 * static_cast<double>(g.vertices()) *
      static_cast<double>(g.vertices() - 1);
  EXPECT_LT(static_cast<double>(approx.candidates), 0.3 * all_pairs_count);
}

TEST(Lsh, GeometryValidation) {
  const auto g = star(4);
  common::ThreadPool pool(2);
  const MinHash mh(64);
  LshOptions bad;
  bad.bands = 10;
  bad.rows_per_band = 7;  // 70 != 64
  EXPECT_THROW(lsh_similar_pairs(g, mh, pool, bad), std::invalid_argument);
}

class JaccardChunks : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(JaccardChunks, ChunkSizeDoesNotChangeResult) {
  graph::RmatOptions o;
  o.scale = 8;
  const auto g = graph::rmat_graph(o);
  common::ThreadPool pool(3);
  Options base;
  const auto reference = as_map(all_pairs(g, pool, base));
  Options chunked;
  chunked.row_chunk = GetParam();
  const auto got = as_map(all_pairs(g, pool, chunked));
  EXPECT_EQ(got, reference);
}

INSTANTIATE_TEST_SUITE_P(Chunks, JaccardChunks,
                         ::testing::Values(1, 3, 17, 64, 1024));

}  // namespace
}  // namespace p8::jaccard
