// Tests for the Figure 9 kernels: 7-point stencil, D3Q19 lattice
// Boltzmann, and the 3-D FFT.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/rng.hpp"
#include "kernels/fft.hpp"
#include "kernels/lbm.hpp"
#include "kernels/stencil.hpp"

namespace p8::kernels {
namespace {

common::ThreadPool& pool() {
  static common::ThreadPool p(3);
  return p;
}

// ---------------------------------------------------------------- stencil --

TEST(Stencil, UniformFieldIsFixedPointWhenWeightsSumToOne) {
  const StencilGrid grid{8, 8, 8};
  const Stencil7 st(grid, 0.4, 0.1);  // 0.4 + 6*0.1 = 1
  std::vector<double> in(grid.points(), 3.5);
  std::vector<double> out(grid.points());
  st.sweep(in, out, pool());
  for (const double v : out) EXPECT_NEAR(v, 3.5, 1e-14);
}

TEST(Stencil, SinglePointSpreads) {
  const StencilGrid grid{7, 7, 7};
  const Stencil7 st(grid);
  std::vector<double> in(grid.points(), 0.0);
  in[grid.index(3, 3, 3)] = 1.0;
  std::vector<double> out(grid.points());
  st.sweep(in, out, pool());
  EXPECT_NEAR(out[grid.index(3, 3, 3)], 0.4, 1e-14);
  EXPECT_NEAR(out[grid.index(2, 3, 3)], 0.1, 1e-14);
  EXPECT_NEAR(out[grid.index(3, 4, 3)], 0.1, 1e-14);
  EXPECT_NEAR(out[grid.index(3, 3, 2)], 0.1, 1e-14);
  EXPECT_NEAR(out[grid.index(2, 2, 3)], 0.0, 1e-14);  // diagonal untouched
}

TEST(Stencil, BoundaryCopiedThrough) {
  const StencilGrid grid{5, 5, 5};
  const Stencil7 st(grid);
  std::vector<double> in(grid.points());
  common::Xoshiro256 rng(1);
  for (auto& v : in) v = rng.uniform();
  std::vector<double> out(grid.points());
  st.sweep(in, out, pool());
  EXPECT_DOUBLE_EQ(out[grid.index(0, 2, 2)], in[grid.index(0, 2, 2)]);
  EXPECT_DOUBLE_EQ(out[grid.index(2, 0, 2)], in[grid.index(2, 0, 2)]);
  EXPECT_DOUBLE_EQ(out[grid.index(2, 2, 4)], in[grid.index(2, 2, 4)]);
}

TEST(Stencil, SweepsConvergeTowardUniform) {
  // Diffusive weights smooth a random field: variance must shrink.
  const StencilGrid grid{10, 10, 10};
  const Stencil7 st(grid);
  std::vector<double> field(grid.points());
  common::Xoshiro256 rng(7);
  for (auto& v : field) v = rng.uniform();
  auto spread = [&](const std::vector<double>& f) {
    double lo = 1e300;
    double hi = -1e300;
    // Interior only: boundaries are frozen.
    for (std::size_t z = 1; z + 1 < 10; ++z)
      for (std::size_t y = 1; y + 1 < 10; ++y)
        for (std::size_t x = 1; x + 1 < 10; ++x) {
          lo = std::min(lo, f[grid.index(x, y, z)]);
          hi = std::max(hi, f[grid.index(x, y, z)]);
        }
    return hi - lo;
  };
  const double before = spread(field);
  const auto after = st.run(field, 10, pool());
  EXPECT_LT(spread(after), before);
}

TEST(Stencil, OperationalIntensityNearHalf) {
  const Stencil7 st(StencilGrid{128, 128, 128});
  EXPECT_GT(st.operational_intensity(), 0.3);
  EXPECT_LT(st.operational_intensity(), 0.6);
}

TEST(Stencil, RejectsTinyGrids) {
  EXPECT_THROW(Stencil7(StencilGrid{2, 8, 8}), std::invalid_argument);
}

// -------------------------------------------------------------------- LBM --

TEST(Lbm, EquilibriumIsStationary) {
  LbmD3Q19 lbm(6, 6, 6);
  lbm.initialize(1.0, 0.0, 0.0, 0.0);
  const double mass0 = lbm.total_mass();
  for (int s = 0; s < 5; ++s) lbm.step(pool());
  EXPECT_NEAR(lbm.total_mass(), mass0, 1e-10);
  const auto m = lbm.macroscopic(3, 3, 3);
  EXPECT_NEAR(m.density, 1.0, 1e-12);
  EXPECT_NEAR(m.ux, 0.0, 1e-12);
}

TEST(Lbm, MassAndMomentumConserved) {
  LbmD3Q19 lbm(8, 6, 4);
  lbm.initialize(1.0, 0.05, -0.02, 0.01);
  const double mass0 = lbm.total_mass();
  const auto mom0 = lbm.total_momentum();
  for (int s = 0; s < 10; ++s) lbm.step(pool());
  EXPECT_NEAR(lbm.total_mass(), mass0, mass0 * 1e-12);
  const auto mom = lbm.total_momentum();
  for (int d = 0; d < 3; ++d) EXPECT_NEAR(mom[d], mom0[d], 1e-9);
}

TEST(Lbm, UniformFlowAdvects) {
  LbmD3Q19 lbm(6, 6, 6);
  lbm.initialize(1.0, 0.08, 0.0, 0.0);
  for (int s = 0; s < 3; ++s) lbm.step(pool());
  const auto m = lbm.macroscopic(2, 2, 2);
  EXPECT_NEAR(m.ux, 0.08, 1e-6);
  EXPECT_NEAR(m.uy, 0.0, 1e-9);
}

TEST(Lbm, OperationalIntensityNearOne) {
  // The paper's Figure 9 places LBMHD at OI ~ 1.
  const LbmD3Q19 lbm(32, 32, 32);
  EXPECT_GT(lbm.operational_intensity(), 0.7);
  EXPECT_LT(lbm.operational_intensity(), 1.6);
}

TEST(Lbm, Validation) {
  EXPECT_THROW(LbmD3Q19(1, 4, 4), std::invalid_argument);
  EXPECT_THROW(LbmD3Q19(4, 4, 4, 0.4), std::invalid_argument);
}

// -------------------------------------------------------------------- FFT --

TEST(Fft1d, MatchesNaiveDft) {
  const std::size_t n = 16;
  std::vector<Complex> data(n);
  common::Xoshiro256 rng(3);
  for (auto& c : data) c = {rng.uniform() - 0.5, rng.uniform() - 0.5};
  std::vector<Complex> reference(n);
  for (std::size_t k = 0; k < n; ++k) {
    Complex sum{0, 0};
    for (std::size_t j = 0; j < n; ++j) {
      const double ang = -2.0 * std::numbers::pi *
                         static_cast<double>(k * j) / static_cast<double>(n);
      sum += data[j] * Complex(std::cos(ang), std::sin(ang));
    }
    reference[k] = sum;
  }
  fft_1d(data);
  for (std::size_t k = 0; k < n; ++k) {
    EXPECT_NEAR(data[k].real(), reference[k].real(), 1e-10);
    EXPECT_NEAR(data[k].imag(), reference[k].imag(), 1e-10);
  }
}

TEST(Fft1d, InverseRoundTrip) {
  std::vector<Complex> data(64);
  common::Xoshiro256 rng(5);
  for (auto& c : data) c = {rng.uniform(), rng.uniform()};
  const auto original = data;
  fft_1d(data);
  fft_1d(data, /*inverse=*/true);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(data[i].real(), original[i].real(), 1e-12);
    EXPECT_NEAR(data[i].imag(), original[i].imag(), 1e-12);
  }
}

TEST(Fft1d, RejectsNonPowerOfTwo) {
  std::vector<Complex> data(12);
  EXPECT_THROW(fft_1d(data), std::invalid_argument);
}

TEST(Fft3d, DeltaTransformsToConstant) {
  const Fft3D fft(4, 4, 4);
  std::vector<Complex> field(fft.points(), Complex{0, 0});
  field[0] = {1.0, 0.0};
  fft.transform(field, pool());
  for (const auto& c : field) {
    EXPECT_NEAR(c.real(), 1.0, 1e-12);
    EXPECT_NEAR(c.imag(), 0.0, 1e-12);
  }
}

TEST(Fft3d, PlaneWaveTransformsToDelta) {
  const Fft3D fft(8, 4, 2);
  std::vector<Complex> field(fft.points());
  // exp(+2 pi i * (3x/8 + 1y/4)) concentrates at bin (3, 1, 0).
  for (std::size_t z = 0; z < 2; ++z)
    for (std::size_t y = 0; y < 4; ++y)
      for (std::size_t x = 0; x < 8; ++x) {
        const double phase = 2.0 * std::numbers::pi *
                             (3.0 * x / 8.0 + 1.0 * y / 4.0);
        field[fft.index(x, y, z)] = {std::cos(phase), std::sin(phase)};
      }
  fft.transform(field, pool());
  for (std::size_t z = 0; z < 2; ++z)
    for (std::size_t y = 0; y < 4; ++y)
      for (std::size_t x = 0; x < 8; ++x) {
        const double expected =
            (x == 3 && y == 1 && z == 0) ? static_cast<double>(fft.points())
                                         : 0.0;
        EXPECT_NEAR(field[fft.index(x, y, z)].real(), expected, 1e-9);
        EXPECT_NEAR(field[fft.index(x, y, z)].imag(), 0.0, 1e-9);
      }
}

TEST(Fft3d, RoundTripAndParseval) {
  const Fft3D fft(8, 8, 8);
  std::vector<Complex> field(fft.points());
  common::Xoshiro256 rng(11);
  for (auto& c : field) c = {rng.uniform() - 0.5, rng.uniform() - 0.5};
  const auto original = field;
  double energy_in = 0.0;
  for (const auto& c : field) energy_in += std::norm(c);

  fft.transform(field, pool());
  double energy_out = 0.0;
  for (const auto& c : field) energy_out += std::norm(c);
  // Parseval: sum|X|^2 = N sum|x|^2 for the unnormalized transform.
  EXPECT_NEAR(energy_out, energy_in * static_cast<double>(fft.points()),
              energy_in * 1e-6);

  fft.transform(field, pool(), /*inverse=*/true);
  for (std::size_t i = 0; i < field.size(); ++i) {
    EXPECT_NEAR(field[i].real(), original[i].real(), 1e-11);
    EXPECT_NEAR(field[i].imag(), original[i].imag(), 1e-11);
  }
}

TEST(Fft3d, OperationalIntensityAboveOne) {
  // Figure 9 places 3D FFT at OI ~ 1.64.
  const Fft3D fft(256, 256, 256);
  EXPECT_GT(fft.operational_intensity(), 1.0);
  EXPECT_LT(fft.operational_intensity(), 2.5);
}

TEST(Fft3d, Validation) {
  EXPECT_THROW(Fft3D(6, 8, 8), std::invalid_argument);
  EXPECT_THROW(Fft3D(8, 8, 1), std::invalid_argument);
}

class FftSizes
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(FftSizes, RoundTripAnyBox) {
  const auto [nx, ny, nz] = GetParam();
  const Fft3D fft(static_cast<std::size_t>(nx), static_cast<std::size_t>(ny),
                  static_cast<std::size_t>(nz));
  std::vector<Complex> field(fft.points());
  common::Xoshiro256 rng(static_cast<std::uint64_t>(nx * ny * nz));
  for (auto& c : field) c = {rng.uniform() - 0.5, rng.uniform() - 0.5};
  const auto original = field;
  fft.transform(field, pool());
  fft.transform(field, pool(), true);
  double worst = 0.0;
  for (std::size_t i = 0; i < field.size(); ++i)
    worst = std::max(worst, std::abs(field[i].real() - original[i].real()) +
                                std::abs(field[i].imag() - original[i].imag()));
  EXPECT_LT(worst, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(
    Boxes, FftSizes,
    ::testing::Values(std::tuple{2, 2, 2}, std::tuple{4, 8, 2},
                      std::tuple{16, 4, 8}, std::tuple{32, 2, 4},
                      std::tuple{8, 8, 8}));

class LbmTau : public ::testing::TestWithParam<double> {};

TEST_P(LbmTau, StableAndConservativeAcrossRelaxationTimes) {
  LbmD3Q19 lbm(6, 6, 6, GetParam());
  lbm.initialize(1.0, 0.04, -0.02, 0.01);
  const double mass0 = lbm.total_mass();
  for (int s = 0; s < 8; ++s) lbm.step(pool());
  EXPECT_NEAR(lbm.total_mass(), mass0, mass0 * 1e-12);
  // Fields stay finite and near the initial state for gentle flows.
  const auto m = lbm.macroscopic(3, 3, 3);
  EXPECT_LT(std::abs(m.ux), 0.5);
  EXPECT_GT(m.density, 0.5);
  EXPECT_LT(m.density, 1.5);
}

INSTANTIATE_TEST_SUITE_P(Taus, LbmTau,
                         ::testing::Values(0.55, 0.8, 1.0, 1.7));

class StencilGrids
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(StencilGrids, UniformFixedPointAnyGrid) {
  const auto [nx, ny, nz] = GetParam();
  const StencilGrid grid{static_cast<std::size_t>(nx),
                         static_cast<std::size_t>(ny),
                         static_cast<std::size_t>(nz)};
  const Stencil7 st(grid);
  std::vector<double> in(grid.points(), -2.5);
  std::vector<double> out(grid.points());
  st.sweep(in, out, pool());
  for (const double v : out) ASSERT_NEAR(v, -2.5, 1e-14);
}

INSTANTIATE_TEST_SUITE_P(Grids, StencilGrids,
                         ::testing::Values(std::tuple{3, 3, 3},
                                           std::tuple{16, 3, 5},
                                           std::tuple{5, 16, 3},
                                           std::tuple{9, 9, 9}));

}  // namespace
}  // namespace p8::kernels
