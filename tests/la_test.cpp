// Tests for the dense linear-algebra substrate.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "la/eigen.hpp"
#include "la/matrix.hpp"
#include "la/purification.hpp"
#include "la/solve.hpp"

namespace p8::la {
namespace {

Matrix random_symmetric(std::size_t n, std::uint64_t seed) {
  common::Xoshiro256 rng(seed);
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i; j < n; ++j)
      a(i, j) = a(j, i) = rng.uniform() * 2.0 - 1.0;
  return a;
}

TEST(Matrix, BasicAccess) {
  Matrix m(2, 3);
  m(1, 2) = 5.0;
  EXPECT_DOUBLE_EQ(m(1, 2), 5.0);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(0, 0), 0.0);
}

TEST(Matrix, IdentityAndMultiply) {
  const Matrix i3 = Matrix::identity(3);
  const Matrix a = random_symmetric(3, 1);
  const Matrix ai = multiply(a, i3);
  EXPECT_LT(a.distance(ai), 1e-14);
}

TEST(Matrix, MultiplyKnown) {
  Matrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 3;
  a(1, 1) = 4;
  const Matrix a2 = multiply(a, a);
  EXPECT_DOUBLE_EQ(a2(0, 0), 7.0);
  EXPECT_DOUBLE_EQ(a2(0, 1), 10.0);
  EXPECT_DOUBLE_EQ(a2(1, 0), 15.0);
  EXPECT_DOUBLE_EQ(a2(1, 1), 22.0);
}

TEST(Matrix, MultiplyShapeCheck) {
  EXPECT_THROW(multiply(Matrix(2, 3), Matrix(2, 3)), std::invalid_argument);
}

TEST(Matrix, TransposeRoundTrip) {
  common::Xoshiro256 rng(4);
  Matrix a(3, 5);
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 5; ++c) a(r, c) = rng.uniform();
  const Matrix att = a.transposed().transposed();
  EXPECT_LT(a.distance(att), 1e-15);
  EXPECT_DOUBLE_EQ(a.transposed()(4, 2), a(2, 4));
}

TEST(Matrix, AddWithCoefficients) {
  const Matrix a = Matrix::identity(2);
  Matrix b(2, 2, 1.0);
  const Matrix c = add(a, b, 2.0, 3.0);
  EXPECT_DOUBLE_EQ(c(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 3.0);
}

TEST(Matrix, SymmetrizeAverages) {
  Matrix a(2, 2);
  a(0, 1) = 4.0;
  a(1, 0) = 2.0;
  symmetrize(a);
  EXPECT_DOUBLE_EQ(a(0, 1), 3.0);
  EXPECT_DOUBLE_EQ(a(1, 0), 3.0);
}

TEST(Matrix, TraceProduct) {
  const Matrix a = random_symmetric(4, 2);
  const Matrix b = random_symmetric(4, 3);
  const Matrix ab = multiply(a, b);
  double trace = 0.0;
  for (std::size_t i = 0; i < 4; ++i) trace += ab(i, i);
  EXPECT_NEAR(trace_product(a, b), trace, 1e-12);
}

TEST(Matrix, MaxAbs) {
  Matrix a(2, 2);
  a(1, 0) = -7.0;
  a(0, 1) = 3.0;
  EXPECT_DOUBLE_EQ(a.max_abs(), 7.0);
}

// ---------------------------------------------------------------- eigen ----

TEST(Eigen, DiagonalMatrix) {
  Matrix a(3, 3);
  a(0, 0) = 3.0;
  a(1, 1) = 1.0;
  a(2, 2) = 2.0;
  const EigenResult r = symmetric_eigen(a);
  EXPECT_NEAR(r.values[0], 1.0, 1e-12);
  EXPECT_NEAR(r.values[1], 2.0, 1e-12);
  EXPECT_NEAR(r.values[2], 3.0, 1e-12);
}

TEST(Eigen, KnownTwoByTwo) {
  // [[2,1],[1,2]] -> eigenvalues 1 and 3.
  Matrix a(2, 2);
  a(0, 0) = a(1, 1) = 2.0;
  a(0, 1) = a(1, 0) = 1.0;
  const EigenResult r = symmetric_eigen(a);
  EXPECT_NEAR(r.values[0], 1.0, 1e-12);
  EXPECT_NEAR(r.values[1], 3.0, 1e-12);
}

class EigenRandom : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EigenRandom, ResidualAndOrthonormality) {
  const std::size_t n = GetParam();
  const Matrix a = random_symmetric(n, n);
  const EigenResult r = symmetric_eigen(a);

  // A v_k = lambda_k v_k.
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t row = 0; row < n; ++row) {
      double av = 0.0;
      for (std::size_t c = 0; c < n; ++c) av += a(row, c) * r.vectors(c, k);
      EXPECT_NEAR(av, r.values[k] * r.vectors(row, k), 1e-8)
          << "k=" << k << " row=" << row;
    }
  }
  // V^T V = I.
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      double dot = 0.0;
      for (std::size_t k = 0; k < n; ++k)
        dot += r.vectors(k, i) * r.vectors(k, j);
      EXPECT_NEAR(dot, i == j ? 1.0 : 0.0, 1e-10);
    }
  // Values ascend.
  for (std::size_t k = 1; k < n; ++k)
    EXPECT_LE(r.values[k - 1], r.values[k] + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Sizes, EigenRandom,
                         ::testing::Values(1, 2, 3, 5, 8, 16, 33));

TEST(Eigen, TraceAndFrobeniusPreserved) {
  const Matrix a = random_symmetric(12, 7);
  const EigenResult r = symmetric_eigen(a);
  double trace = 0.0;
  double frob = 0.0;
  for (std::size_t i = 0; i < 12; ++i) {
    trace += a(i, i);
    for (std::size_t j = 0; j < 12; ++j) frob += a(i, j) * a(i, j);
  }
  double etrace = 0.0;
  double efrob = 0.0;
  for (const double v : r.values) {
    etrace += v;
    efrob += v * v;
  }
  EXPECT_NEAR(trace, etrace, 1e-9);
  EXPECT_NEAR(frob, efrob, 1e-8);
}

TEST(Eigen, RejectsNonSquare) {
  EXPECT_THROW(symmetric_eigen(Matrix(2, 3)), std::invalid_argument);
}

// ----------------------------------------------------------- inverse sqrt --

TEST(InverseSqrt, XsxIsIdentity) {
  // Build an SPD matrix: S = A^T A + I.
  const Matrix a = random_symmetric(10, 5);
  Matrix s = multiply(a.transposed(), a);
  for (std::size_t i = 0; i < 10; ++i) s(i, i) += 1.0;
  const Matrix x = inverse_sqrt(s);
  const Matrix should_be_identity = multiply(multiply(x, s), x);
  EXPECT_LT(should_be_identity.distance(Matrix::identity(10)), 1e-8);
}

TEST(InverseSqrt, IdentityFixedPoint) {
  const Matrix x = inverse_sqrt(Matrix::identity(4));
  EXPECT_LT(x.distance(Matrix::identity(4)), 1e-10);
}

TEST(InverseSqrt, RejectsIndefinite) {
  Matrix s(2, 2);
  s(0, 0) = 1.0;
  s(1, 1) = -1.0;
  EXPECT_THROW(inverse_sqrt(s), std::invalid_argument);
}

// ------------------------------------------------------------------ solve --

TEST(Solve, KnownSystem) {
  // [2 1; 1 3] x = [5; 10] -> x = [1; 3].
  Matrix a(2, 2);
  a(0, 0) = 2;
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = 3;
  const auto x = solve_linear(a, {5.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Solve, NeedsPivoting) {
  // Zero on the leading diagonal: plain elimination would divide by 0.
  Matrix a(2, 2);
  a(0, 0) = 0;
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = 0;
  const auto x = solve_linear(a, {2.0, 3.0});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Solve, RandomSystemResidual) {
  common::Xoshiro256 rng(13);
  Matrix a(12, 12);
  for (std::size_t r = 0; r < 12; ++r) {
    for (std::size_t c = 0; c < 12; ++c) a(r, c) = rng.uniform() - 0.5;
    a(r, r) += 4.0;  // diagonally dominant: well conditioned
  }
  std::vector<double> b(12);
  for (auto& v : b) v = rng.uniform();
  const auto x = solve_linear(a, b);
  for (std::size_t r = 0; r < 12; ++r) {
    double sum = 0.0;
    for (std::size_t c = 0; c < 12; ++c) sum += a(r, c) * x[c];
    EXPECT_NEAR(sum, b[r], 1e-10);
  }
}

TEST(Solve, SingularRejected) {
  Matrix a(2, 2, 1.0);  // rank 1
  EXPECT_THROW(solve_linear(a, {1.0, 1.0}), std::invalid_argument);
}

TEST(Solve, ShapeValidation) {
  EXPECT_THROW(solve_linear(Matrix(2, 3), {1.0, 2.0}),
               std::invalid_argument);
  EXPECT_THROW(solve_linear(Matrix(2, 2), {1.0}), std::invalid_argument);
}

// ----------------------------------------------------------- purification --

TEST(Purify, MatchesDiagonalizationProjector) {
  // Projector onto the lowest k eigenvectors of a random symmetric
  // matrix, computed both ways.
  const std::size_t n = 10;
  const Matrix f = random_symmetric(n, 21);
  const EigenResult eig = symmetric_eigen(f);
  for (const std::size_t occ : {2ul, 5ul, 7ul}) {
    Matrix reference(n, n);
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j)
        for (std::size_t k = 0; k < occ; ++k)
          reference(i, j) += eig.vectors(i, k) * eig.vectors(j, k);

    const PurificationResult pur = purify(f, occ);
    ASSERT_TRUE(pur.converged) << "occ " << occ;
    EXPECT_LT(pur.projector.distance(reference), 1e-6) << "occ " << occ;
  }
}

TEST(Purify, ProjectorIsIdempotentWithRightTrace) {
  const Matrix f = random_symmetric(8, 5);
  const PurificationResult pur = purify(f, 3);
  ASSERT_TRUE(pur.converged);
  const Matrix d2 = multiply(pur.projector, pur.projector);
  EXPECT_LT(pur.projector.distance(d2), 1e-7);
  double trace = 0.0;
  for (std::size_t i = 0; i < 8; ++i) trace += pur.projector(i, i);
  EXPECT_NEAR(trace, 3.0, 1e-8);
}

TEST(Purify, TrivialOccupations) {
  const Matrix f = random_symmetric(5, 9);
  const auto none = purify(f, 0);
  EXPECT_TRUE(none.converged);
  EXPECT_NEAR(none.projector.max_abs(), 0.0, 1e-15);
  const auto all = purify(f, 5);
  EXPECT_TRUE(all.converged);
  EXPECT_LT(all.projector.distance(Matrix::identity(5)), 1e-12);
}

TEST(Purify, RejectsOverOccupation) {
  EXPECT_THROW(purify(Matrix(3, 3), 4), std::invalid_argument);
}

}  // namespace
}  // namespace p8::la
