// p8lint-fixture: path=bench/bench_fixture_noargs.cpp expect=bench-argparser
// Deliberately bad: a bench binary with hand-rolled flag handling.
#include <cstdio>

int main() {
  std::puts("bench with no ArgParser");
  return 0;
}
