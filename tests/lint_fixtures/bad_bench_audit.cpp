// p8lint-fixture: path=bench/bench_fixture_audit.cpp expect=bench-audit-gate
// Deliberately bad: constructs a sim::Machine and simulates without
// ever consulting its model audit.
struct Machine;
Machine* build_machine(const char* name);
void run(Machine&);

int main(int argc, char** argv) {
  p8::common::ArgParser args(argc, argv);
  const char* name = machine_arg(args);
  Machine* machine = build_machine(name);
  run(*machine);
  return 0;
}
