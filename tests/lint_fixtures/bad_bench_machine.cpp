// p8lint-fixture: path=bench/bench_fixture_machine.cpp expect=bench-machine-flag
// Deliberately bad: simulates a hard-coded machine with no --machine=
// selector, though it does gate on the model audit.
struct Machine;
Machine* default_machine();
void gate_model(Machine&);
void run(Machine&);

int main(int argc, char** argv) {
  p8::common::ArgParser args(argc, argv);
  Machine* machine = default_machine();
  gate_model(*machine);
  run(*machine);
  return 0;
}
