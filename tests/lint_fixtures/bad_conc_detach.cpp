// p8lint-fixture: path=src/common/fixture_detach.cpp expect=conc-detach
// Deliberately bad: a detached thread that nothing ever joins.
#include <thread>

void fire() { std::thread([] {}).detach(); }
