// p8lint-fixture: path=src/common/fixture_volatile.cpp expect=conc-volatile
// Deliberately bad: volatile used as a synchronization flag.
volatile int g_done = 0;

void finish() { g_done = 1; }
