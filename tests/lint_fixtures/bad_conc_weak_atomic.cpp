// p8lint-fixture: path=src/common/fixture_atomic.cpp expect=conc-weak-atomic
// Deliberately bad: a relaxed load with no justification annotation.
#include <atomic>

int peek(const std::atomic<int>& v) {
  return v.load(std::memory_order_relaxed);
}
