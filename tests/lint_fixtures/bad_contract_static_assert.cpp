// p8lint-fixture: path=src/sim/fixture_static.hpp expect=contract-static-assert
// Deliberately bad: a bare static_assert instead of P8_STATIC_REQUIRE.
static_assert(sizeof(int) == 4, "fixture expects 32-bit int");
