// p8lint-fixture: path=src/sim/fixture_hot.hpp expect=contract-throw-header
// Deliberately bad: a bare throw in a hot-path header.
inline int pick(int i) {
  if (i < 0) throw i;
  return i;
}
