// p8lint-fixture: path=src/sim/fixture_counter.cpp expect=counter-name-grammar
// Deliberately bad: a counter name violating the dotted grammar.
struct Reg;
unsigned long* make_counter(Reg& r, const char* prefix, const char* name);

unsigned long* reg(Reg& r) { return make_counter(r, "l3.victim", "Hits!"); }
