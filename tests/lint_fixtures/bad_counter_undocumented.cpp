// p8lint-fixture: path=src/sim/fixture_undoc.cpp expect=counter-undocumented
// Deliberately bad: a grammatical counter name docs/COUNTERS.md has
// never heard of.
struct Reg;
unsigned long* make_counter(Reg& r, const char* prefix, const char* name);

unsigned long* reg(Reg& r) {
  return make_counter(r, "zz9.plural", "zebra_qqz");
}
