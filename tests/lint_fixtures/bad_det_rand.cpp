// p8lint-fixture: path=src/sim/fixture_rand.cpp expect=det-rand
// Deliberately bad: libc RNG inside model code.  Never compiled —
// p8lint's fixture runner lints this buffer as if it lived at the
// path above.
#include <cstdlib>

int noise() { return std::rand() % 7; }
