// p8lint-fixture: path=src/predict/fixture_unordered.cpp expect=det-unordered-iter
// Deliberately bad: hash-order iteration feeding printed output.
#include <cstdio>
#include <unordered_map>

void dump(const std::unordered_map<int, int>& table) {
  for (const auto& kv : table) std::printf("%d\n", kv.second);
}
