// p8lint-fixture: path=src/trace/fixture_clock.cpp expect=det-wall-clock
// Deliberately bad: wall-clock read inside model code.
#include <ctime>

long stamp() { return static_cast<long>(time(nullptr)); }
