// p8lint-fixture: path=src/common/fixture_annot.cpp expect=lint-annotation,conc-weak-atomic
// Deliberately bad: the annotation has no justification, so it
// suppresses nothing — both the annotation complaint and the finding
// it failed to cover must surface.
#include <atomic>

// p8lint: allow(conc-weak-atomic)
int peek(const std::atomic<int>& v) {
  return v.load(std::memory_order_relaxed);
}
