// p8lint-fixture: path=src/serve/fixture_server.cpp expect=det-wall-clock
// Deliberately bad: the daemon layer is model scope too — timestamping
// a response with system_clock would leak wall time into output that
// must be byte-identical across runs.
#include <chrono>

long long stamp_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}
