// p8lint-fixture: path=bench/bench_fixture_clean.cpp expect=none
// Clean twin: the full bench hygiene idiom — ArgParser, --machine=
// selection, audit gate, documented counter names.  Zero findings
// expected.
struct Reg;
struct Machine;
unsigned long* make_counter(Reg& r, const char* prefix, const char* name);
Machine* build(const char* name);
void gate_model(Machine&);
void run(Machine&, unsigned long*);

int main(int argc, char** argv) {
  p8::common::ArgParser args(argc, argv);
  const char* name = machine_arg(args);
  Machine* machine = build(name);
  gate_model(*machine);
  Reg* reg = nullptr;
  unsigned long* hits = make_counter(*reg, "l3.victim", ".hit");
  run(*machine, hits);
  return 0;
}
