// p8lint-fixture: path=src/sim/fixture_clean.cpp expect=none
// Clean twin: every banned spelling below sits where the scanner must
// NOT see code — comments, string literals, raw strings, an #if 0
// region — plus one weak atomic properly justified inline.  Zero
// findings expected.
#include <atomic>

// std::rand() and gettimeofday() in a comment are not findings.
static const char* kMsg = "calls time(nullptr) and std::rand() at will";
static const char* kRaw = R"lint(volatile int x; t.detach();)lint";

#if 0
int disabled() { return std::rand(); }  // never seen: #if 0 region
#endif

const char* message() { return kMsg ? kMsg : kRaw; }

int peek(const std::atomic<int>& v) {
  // p8lint: allow(conc-weak-atomic) statistics-only read; no ordering needed
  return v.load(std::memory_order_relaxed);
}
