// p8lint-fixture: path=src/serve/fixture_clean.cpp expect=none
// Clean twin: the serve-layer idiom — latency measured through
// common::Timer (steady clock, perf reporting only), counters
// registered under the documented serve. namespace, and the banned
// spellings confined to comments/strings where the scanner must not
// look.  Zero findings expected.
struct Reg;
unsigned long* make_counter(Reg& r, const char* prefix, const char* name);

// system_clock and time(nullptr) in a comment are not findings.
static const char* kMsg = "daemon never calls gettimeofday";

unsigned long* register_hits(Reg& r) {
  return make_counter(r, "serve.", "cache_hits");
}

const char* banner() { return kMsg; }
