// p8lint's scanner and engine: the hard lexing cases (raw strings,
// digit separators, splices, comment/string nesting, #if 0 regions),
// the losslessness contract as a randomized property over real repo
// lines, and the rule/allowlist/annotation machinery the gate rests
// on.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "lint/allowlist.hpp"
#include "lint/engine.hpp"
#include "lint/lexer.hpp"
#include "lint/rules.hpp"
#include "proptest.hpp"

namespace p8::lint {
namespace {

std::string concat(const std::vector<Token>& tokens) {
  std::string out;
  for (const Token& t : tokens) out += t.text;
  return out;
}

/// Asserts the full losslessness contract on one input: the tokens
/// partition the bytes, offsets are exact, nothing is empty.
void expect_lossless(const std::string& input) {
  const std::vector<Token> tokens = lex(input);
  EXPECT_EQ(concat(tokens), input);
  std::size_t offset = 0;
  for (const Token& t : tokens) {
    EXPECT_FALSE(t.text.empty());
    EXPECT_EQ(t.offset, offset);
    offset += t.text.size();
  }
  EXPECT_EQ(offset, input.size());
}

/// The kinds of the non-whitespace tokens, for shape assertions.
std::vector<Tok> shape(const std::vector<Token>& tokens) {
  std::vector<Tok> kinds;
  for (const Token& t : tokens)
    if (t.kind != Tok::kWhitespace) kinds.push_back(t.kind);
  return kinds;
}

/// The first token of the given kind, or nullptr.
const Token* first(const std::vector<Token>& tokens, Tok kind) {
  for (const Token& t : tokens)
    if (t.kind == kind) return &t;
  return nullptr;
}

// ---------------------------------------------------------------------------
// Raw strings

TEST(LintLexer, RawStringSwallowsCommentAndQuoteLookalikes) {
  const std::string src =
      "const char* s = R\"(has \" quote and /* comment */ and 'x')\";\n";
  const std::vector<Token> tokens = lex(src);
  expect_lossless(src);
  const Token* raw = first(tokens, Tok::kRawString);
  ASSERT_NE(raw, nullptr);
  EXPECT_EQ(string_payload(*raw), "has \" quote and /* comment */ and 'x'");
  EXPECT_EQ(first(tokens, Tok::kComment), nullptr);
  EXPECT_EQ(first(tokens, Tok::kCharLit), nullptr);
}

TEST(LintLexer, RawStringCustomDelimiterIgnoresInnerCloser) {
  const std::string src = "auto s = R\"xy(inner )\" not the end)xy\";";
  const std::vector<Token> tokens = lex(src);
  expect_lossless(src);
  const Token* raw = first(tokens, Tok::kRawString);
  ASSERT_NE(raw, nullptr);
  EXPECT_EQ(string_payload(*raw), "inner )\" not the end");
}

TEST(LintLexer, RawStringEncodingPrefixesMergeIntoOneToken) {
  for (const char* prefix : {"LR", "uR", "UR", "u8R"}) {
    const std::string src = std::string(prefix) + "\"(payload)\";";
    const std::vector<Token> tokens = lex(src);
    expect_lossless(src);
    const Token* raw = first(tokens, Tok::kRawString);
    ASSERT_NE(raw, nullptr) << prefix;
    EXPECT_EQ(raw->offset, 0u) << prefix;
    EXPECT_EQ(string_payload(*raw), "payload") << prefix;
  }
}

TEST(LintLexer, UnterminatedRawStringRunsToEofWithoutLoss) {
  expect_lossless("auto s = R\"(never closed...\nint x = 1;\n");
}

// ---------------------------------------------------------------------------
// Numbers and digit separators

TEST(LintLexer, DigitSeparatorsStayOneNumberNotACharLiteral) {
  const std::string src = "std::size_t n = 1'000'000;";
  const std::vector<Token> tokens = lex(src);
  expect_lossless(src);
  const Token* num = first(tokens, Tok::kNumber);
  ASSERT_NE(num, nullptr);
  EXPECT_EQ(num->text, "1'000'000");
  EXPECT_EQ(first(tokens, Tok::kCharLit), nullptr);
}

TEST(LintLexer, PpNumberFormsScanAsOneToken) {
  for (const char* lit : {"0x1p3", "1.5e-3", "0b1010", "1.0e+10", "0x1'2'3",
                          ".5f", "123ull"}) {
    const std::string src = std::string("x = ") + lit + ";";
    const std::vector<Token> tokens = lex(src);
    expect_lossless(src);
    const Token* num = first(tokens, Tok::kNumber);
    ASSERT_NE(num, nullptr) << lit;
    EXPECT_EQ(num->text, lit) << lit;
  }
}

// ---------------------------------------------------------------------------
// Comments, splices, and strings containing comment markers

TEST(LintLexer, LineCommentSpliceContinuesOntoNextLine) {
  // The backslash-newline glues the second physical line into the
  // comment, so `hidden()` must NOT surface as code.
  const std::string src = "int a; // comment \\\nhidden(); \nint b;";
  const std::vector<Token> tokens = lex(src);
  expect_lossless(src);
  const Token* comment = first(tokens, Tok::kComment);
  ASSERT_NE(comment, nullptr);
  EXPECT_NE(comment->text.find("hidden"), std::string::npos);
  for (const Token& t : tokens)
    if (t.kind == Tok::kIdentifier) EXPECT_NE(t.text, "hidden");
}

TEST(LintLexer, PreprocessorSpliceIsOneDirectiveToken) {
  const std::string src = "#define TWO_LINES(a) \\\n  ((a) + 1)\nint x;";
  const std::vector<Token> tokens = lex(src);
  expect_lossless(src);
  const Token* pp = first(tokens, Tok::kPreprocessor);
  ASSERT_NE(pp, nullptr);
  EXPECT_NE(pp->text.find("((a) + 1)"), std::string::npos);
  const Token* id = first(tokens, Tok::kIdentifier);
  ASSERT_NE(id, nullptr);
  EXPECT_EQ(id->text, "int");
}

TEST(LintLexer, CommentMarkersInsideStringsStayStrings) {
  const std::string src =
      "const char* a = \"/* not a comment */\";\n"
      "const char* b = \"// neither\";\n"
      "/* a real one with \"a string\" inside */";
  const std::vector<Token> tokens = lex(src);
  expect_lossless(src);
  int strings = 0, comments = 0;
  for (const Token& t : tokens) {
    strings += t.kind == Tok::kString;
    comments += t.kind == Tok::kComment;
  }
  EXPECT_EQ(strings, 2);
  EXPECT_EQ(comments, 1);
}

TEST(LintLexer, BlockCommentSwallowsNestedOpenersToFirstCloser) {
  const std::string src = "/* outer /* still the same comment */ int x;";
  const std::vector<Token> tokens = lex(src);
  expect_lossless(src);
  const std::vector<Tok> kinds = shape(tokens);
  ASSERT_EQ(kinds.size(), 4u);  // comment, int, x, ;
  EXPECT_EQ(kinds[0], Tok::kComment);
  EXPECT_EQ(kinds[1], Tok::kIdentifier);
}

TEST(LintLexer, UnterminatedBlockCommentRunsToEof) {
  const std::string src = "int a; /* never closed\nint b;";
  const std::vector<Token> tokens = lex(src);
  expect_lossless(src);
  int identifiers = 0;
  for (const Token& t : tokens) identifiers += t.kind == Tok::kIdentifier;
  EXPECT_EQ(identifiers, 2);  // int, a — b is inside the comment
}

TEST(LintLexer, EscapedQuotesDoNotEndTheString) {
  const std::string src = R"(x = "a \" b \\" ; )";
  const std::vector<Token> tokens = lex(src);
  expect_lossless(src);
  const Token* str = first(tokens, Tok::kString);
  ASSERT_NE(str, nullptr);
  EXPECT_EQ(str->text, "\"a \\\" b \\\\\"");
}

// ---------------------------------------------------------------------------
// #if 0 regions

TEST(LintLexer, IfZeroRegionIsOneDisabledSpan) {
  const std::string src =
      "int live1;\n"
      "#if 0\n"
      "int dead; std::rand();\n"
      "#endif\n"
      "int live2;\n";
  const std::vector<Token> tokens = lex(src);
  expect_lossless(src);
  const Token* disabled = first(tokens, Tok::kDisabled);
  ASSERT_NE(disabled, nullptr);
  EXPECT_NE(disabled->text.find("rand"), std::string::npos);
  std::vector<std::string> identifiers;
  for (const Token& t : tokens)
    if (t.kind == Tok::kIdentifier) identifiers.push_back(t.text);
  EXPECT_EQ(identifiers,
            (std::vector<std::string>{"int", "live1", "int", "live2"}));
}

TEST(LintLexer, IfZeroTracksNestedConditionals) {
  const std::string src =
      "#if 0\n"
      "#ifdef FOO\n"
      "int dead;\n"
      "#endif\n"
      "int also_dead;\n"
      "#endif\n"
      "int live;\n";
  const std::vector<Token> tokens = lex(src);
  expect_lossless(src);
  // The inner #ifdef/#endif pair belongs to the disabled span; only
  // the outer terminator lexes as a directive.
  const Token* disabled = first(tokens, Tok::kDisabled);
  ASSERT_NE(disabled, nullptr);
  EXPECT_NE(disabled->text.find("also_dead"), std::string::npos);
  for (const Token& t : tokens)
    if (t.kind == Tok::kIdentifier) EXPECT_NE(t.text, "also_dead");
}

TEST(LintLexer, IfZeroStopsAtElseSoTheLiveBranchIsCode) {
  const std::string src =
      "#if 0\n"
      "int dead;\n"
      "#else\n"
      "int live;\n"
      "#endif\n";
  const std::vector<Token> tokens = lex(src);
  expect_lossless(src);
  bool saw_live = false;
  for (const Token& t : tokens)
    if (t.kind == Tok::kIdentifier && t.text == "live") saw_live = true;
  EXPECT_TRUE(saw_live);
}

TEST(LintLexer, UnterminatedIfZeroRunsToEof) {
  expect_lossless("#if 0\nint dead;\n");
}

// ---------------------------------------------------------------------------
// Char literals and stray quotes

TEST(LintLexer, CharLiteralsIncludingEscapedQuote) {
  for (const char* lit : {"'a'", "'\\''", "'\\n'", "'\\x41'"}) {
    const std::string src = std::string("c = ") + lit + ";";
    const std::vector<Token> tokens = lex(src);
    expect_lossless(src);
    const Token* c = first(tokens, Tok::kCharLit);
    ASSERT_NE(c, nullptr) << lit;
    EXPECT_EQ(c->text, lit) << lit;
  }
}

TEST(LintLexer, StrayQuoteDegradesToPunctNotLostBytes) {
  expect_lossless("int a = b ' c;\n");
  expect_lossless("char c = '");
  expect_lossless("\"unterminated\nint x;");
}

TEST(LintLexer, LineNumbersCountPhysicalLines) {
  const std::string src = "a\n\nb /* c1\nc2 */ d\ne";
  const std::vector<Token> tokens = lex(src);
  expect_lossless(src);
  std::vector<std::pair<std::string, int>> ids;
  for (const Token& t : tokens)
    if (t.kind == Tok::kIdentifier) ids.emplace_back(t.text, t.line);
  ASSERT_EQ(ids.size(), 4u);
  EXPECT_EQ(ids[0], (std::pair<std::string, int>{"a", 1}));
  EXPECT_EQ(ids[1], (std::pair<std::string, int>{"b", 3}));
  EXPECT_EQ(ids[2], (std::pair<std::string, int>{"d", 4}));
  EXPECT_EQ(ids[3], (std::pair<std::string, int>{"e", 5}));
}

// ---------------------------------------------------------------------------
// The losslessness property: random concatenations of real repo lines
// (verbatim snippets from this tree, chosen for lexical hostility)
// must always partition exactly — never lose or fabricate a byte.

const std::vector<std::string>& repo_lines() {
  static const std::vector<std::string> lines = {
      "void StealDeque::push(TaskId id) {",
      "  ring_[b & mask_].store(id);",
      "  bottom_.store(b + 1);  // publishes the slot to thieves",
      "static_assert(sizeof(PackedEri) == 16, \"ERI record packs\");",
      "#include \"sim/machine/machine.hpp\"",
      "#define P8_STATIC_REQUIRE(expr, msg) static_assert(expr, msg)",
      "const std::int64_t t = top_.load(std::memory_order_relaxed);",
      "std::uint64_t key = 0xcbf29ce484222325ULL;  // FNV-ish fold",
      "  key *= 0x100000001b3ULL;",
      "out << \"  \\\"bench\\\": \" + json_quote(bench) + \",\\n\";",
      "if (qp * schwarz_[q] >= tolerance) ++local;",
      "for (const auto& [key, members] : buckets) {",
      "static const char* kRaw = R\"lint(volatile int x;)lint\";",
      "// p8trace record --workload=seq-scan --out=seq.p8t",
      "constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;",
      "std::size_t n = 1'000'000;",
      "#if 0",
      "#endif",
      "/* block */ int after; // trailing",
      "const char c = '\\n';",
      "double x = 0x1p-3 + 1.5e-3;",
      "}  // namespace p8::lint",
      "",
  };
  return lines;
}

TEST(LintLexerProperty, LexingNeverLosesOrFabricatesBytes) {
  const std::vector<std::string>& lines = repo_lines();
  P8_PROP(gen, 300, 0x9813a7) {
    const int count = gen.int_range(1, 24);
    std::string input;
    for (int i = 0; i < count; ++i) {
      input += lines[static_cast<std::size_t>(
          gen.range(0, lines.size() - 1))];
      input += '\n';
    }
    const std::vector<Token> tokens = lex(input);
    std::string rebuilt;
    std::size_t offset = 0;
    bool offsets_ok = true, nonempty_ok = true;
    for (const Token& t : tokens) {
      nonempty_ok = nonempty_ok && !t.text.empty();
      offsets_ok = offsets_ok && t.offset == offset;
      offset += t.text.size();
      rebuilt += t.text;
    }
    ASSERT_EQ(rebuilt, input);
    ASSERT_TRUE(offsets_ok);
    ASSERT_TRUE(nonempty_ok);
    ASSERT_EQ(offset, input.size());
  }
}

TEST(LintLexerProperty, HostileBytePrefixesNeverLoseCoverage) {
  // Truncating hostile inputs mid-token exercises every unterminated
  // path: strings, raw strings, char literals, comments, directives.
  const std::string hostile =
      "u8R\"zz(raw)zz\" L'\\'' /* c */ \"s\\\"t\" #if 0\nx\n#endif 1'2e+3";
  for (std::size_t cut = 0; cut <= hostile.size(); ++cut)
    expect_lossless(hostile.substr(0, cut));
}

// ---------------------------------------------------------------------------
// Rules, annotations, allowlist

std::vector<std::string> rule_ids(const std::vector<Finding>& findings) {
  std::vector<std::string> ids;
  for (const Finding& f : findings) ids.push_back(f.rule);
  return ids;
}

TEST(LintRules, RegistryHasAtLeastTwelveNamedRules) {
  EXPECT_GE(rules().size(), 12u);
  for (const Rule& r : rules()) {
    EXPECT_EQ(find_rule(r.id), &r);
    EXPECT_NE(std::string(r.summary), "");
  }
  EXPECT_EQ(find_rule("no-such-rule"), nullptr);
}

TEST(LintRules, CounterGrammarAcceptsAndRejects) {
  for (const char* ok : {"l3.victim.hit", ".mbs", "probe.", ".", "a_b-c.d0"})
    EXPECT_TRUE(counter_literal_ok(ok)) << ok;
  for (const char* bad : {"", "L1 Hits!", "l1..hit", "Cache.hit", "a b"})
    EXPECT_FALSE(counter_literal_ok(bad)) << bad;
}

TEST(LintRules, BannedSpellingsInCommentsStringsAndDisabledAreInvisible) {
  const std::string src =
      "// std::rand() in a comment\n"
      "const char* s = \"time(nullptr) gettimeofday volatile\";\n"
      "#if 0\nstd::rand(); t.detach();\n#endif\n";
  EXPECT_TRUE(lint_source("src/sim/x.cpp", src, nullptr).empty());
}

TEST(LintRules, DetRandFiresOnlyInModelScope) {
  const std::string src = "int r = std::rand();\n";
  EXPECT_EQ(rule_ids(lint_source("src/sim/x.cpp", src, nullptr)),
            std::vector<std::string>{"det-rand"});
  EXPECT_TRUE(lint_source("src/la/x.cpp", src, nullptr).empty());
}

TEST(LintRules, ServeLayerIsModelScope) {
  // The p8serve daemon must answer byte-identically across runs and
  // client counts, so src/serve gets the full determinism treatment:
  // rand and wall-clock rules fire there, and its headers count as
  // hot-path headers for the contract-throw rule.
  const std::string rng = "int r = std::rand();\n";
  EXPECT_EQ(rule_ids(lint_source("src/serve/cache.cpp", rng, nullptr)),
            std::vector<std::string>{"det-rand"});
  const std::string clock = "long t = time(nullptr);\n";
  EXPECT_EQ(rule_ids(lint_source("src/serve/server.cpp", clock, nullptr)),
            std::vector<std::string>{"det-wall-clock"});
  const std::string hot = "inline int f(int i) {\n  if (i < 0) throw i;\n  return i;\n}\n";
  EXPECT_EQ(rule_ids(lint_source("src/serve/cache.hpp", hot, nullptr)),
            std::vector<std::string>{"contract-throw-header"});
  // .cpp files keep their throws: protocol errors are exceptional by
  // design, only headers are hot-path.
  EXPECT_TRUE(lint_source("src/serve/protocol.cpp", hot, nullptr).empty());
}

TEST(LintRules, ValidAnnotationSuppressesOnlyItsRuleAndLines) {
  const std::string annotated =
      "// p8lint: allow(conc-weak-atomic) stats-only counter here\n"
      "v.load(std::memory_order_relaxed);\n";
  EXPECT_TRUE(lint_source("src/common/x.cpp", annotated, nullptr).empty());
  // Two lines of separation: the annotation no longer reaches.
  const std::string far =
      "// p8lint: allow(conc-weak-atomic) stats-only counter here\n\n\n"
      "v.load(std::memory_order_relaxed);\n";
  EXPECT_EQ(rule_ids(lint_source("src/common/x.cpp", far, nullptr)),
            std::vector<std::string>{"conc-weak-atomic"});
}

TEST(LintRules, UnjustifiedAnnotationSuppressesNothingAndIsAFinding) {
  const std::string src =
      "// p8lint: allow(conc-weak-atomic)\n"
      "v.load(std::memory_order_relaxed);\n";
  const std::vector<std::string> ids =
      rule_ids(lint_source("src/common/x.cpp", src, nullptr));
  EXPECT_EQ(ids.size(), 2u);
  EXPECT_NE(std::find(ids.begin(), ids.end(), "lint-annotation"), ids.end());
  EXPECT_NE(std::find(ids.begin(), ids.end(), "conc-weak-atomic"), ids.end());
}

TEST(LintAllowlist, ParsesAppliesExpiresAndDetectsStaleEntries) {
  Allowlist allow;
  const std::string text =
      "# comment\n"
      "src/a.cpp conc-volatile expires=2031-01-01 hardware register shim\n"
      "src/b.cpp conc-detach expires=2020-01-01 long since expired entry\n"
      "src/c.cpp det-rand expires=2031-01-01 never matches anything\n";
  ASSERT_EQ(parse_allowlist(text, "p8lint.allow", allow), "");
  ASSERT_EQ(allow.entries.size(), 3u);

  std::vector<Finding> findings = {
      {"src/a.cpp", 3, "conc-volatile", "m"},
      {"src/b.cpp", 7, "conc-detach", "m"},
  };
  apply_allowlist(allow, "2026-08-08", findings);
  sort_findings(findings);
  // a.cpp suppressed; b.cpp survives (expired) plus two allowlist
  // findings: the expired entry and the stale never-matching one.
  ASSERT_EQ(findings.size(), 3u);
  EXPECT_EQ(findings[0].file, "p8lint.allow");
  EXPECT_EQ(findings[0].rule, "lint-allowlist");
  EXPECT_NE(findings[0].message.find("expired"), std::string::npos);
  EXPECT_EQ(findings[1].rule, "lint-allowlist");
  EXPECT_NE(findings[1].message.find("stale"), std::string::npos);
  EXPECT_EQ(findings[2].file, "src/b.cpp");
  EXPECT_EQ(findings[2].rule, "conc-detach");
}

TEST(LintAllowlist, RejectsMissingJustificationAndUnknownRule) {
  Allowlist allow;
  EXPECT_NE(parse_allowlist("src/a.cpp conc-volatile expires=2031-01-01\n",
                            "f", allow),
            "");
  EXPECT_NE(parse_allowlist(
                "src/a.cpp no-such-rule expires=2031-01-01 justified here\n",
                "f", allow),
            "");
  EXPECT_NE(parse_allowlist(
                "src/a.cpp conc-volatile expires=someday justified here\n",
                "f", allow),
            "");
}

TEST(LintEngine, JsonReportQuotesAndOrdersFindings) {
  std::vector<Finding> findings = {
      {"b.cpp", 2, "det-rand", "uses \"rand\""},
      {"a.cpp", 9, "conc-volatile", "x"},
  };
  sort_findings(findings);
  const std::string json = format_json(findings);
  EXPECT_NE(json.find("\"file\": \"a.cpp\""), std::string::npos);
  EXPECT_NE(json.find("uses \\\"rand\\\""), std::string::npos);
  EXPECT_LT(json.find("a.cpp"), json.find("b.cpp"));
}

}  // namespace
}  // namespace p8::lint
