// The closed-form predictor (src/predict/machine_predict) and its
// QueryRouter: unit pins against the simulator's own analytic tiers
// (bandwidth and NoC queries must agree bit for bit — they evaluate
// the identical formulas), the plateau staircase and routing policy,
// and the fallback contract: a simulation-required query answered
// through the router must equal the direct ubench run exactly.
//
// The property section runs the predictor over randomized audit-clean
// machine configurations (same generator discipline as
// sim_property_test): predicted chase latency is monotone
// non-decreasing in footprint, the bandwidth roofs order the same way
// the latency plateaus do (more capacity -> higher latency; more
// chips/cores/threads -> no lower roof), and every prediction is
// finite and positive — the closed forms never divide through zero or
// throw for a spec the audit accepts.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "predict/machine_predict.hpp"
#include "proptest.hpp"
#include "sim/counters.hpp"
#include "sim/machine/machine.hpp"
#include "sim/machine/spec.hpp"
#include "ubench/workloads.hpp"

namespace {

using namespace p8;

sim::MachineSpec e870() { return sim::machine_spec("e870"); }

/// Same structural re-roll as sim_property_test's generator: a random
/// registry preset with the knobs the audit polices swept across (and
/// beyond) the plausible POWER8 range.
sim::MachineSpec random_spec(proptest::Gen& gen) {
  sim::MachineSpec s = sim::machine_spec(
      sim::machine_names()[static_cast<std::size_t>(gen.int_range(
          0, static_cast<int>(sim::machine_names().size()) - 1))]);
  arch::SystemSpec& sys = s.system;
  sys.sockets = gen.int_range(1, 16);
  sys.chips_per_socket = gen.pick({1, 1, 1, 2});
  sys.cores_per_chip = gen.int_range(1, 12);
  sys.centaurs_per_chip = gen.int_range(1, 8);
  sys.clock_ghz = gen.real_range(2.0, 5.5);
  sys.chips_per_group = gen.pick({1, 2, 3, 4, 6, 8, 16});
  sys.processor.core.smt_threads = gen.pick({1, 2, 4, 8});
  if (gen.chance(0.3)) sys.xbus_gbs = gen.real_range(10.0, 80.0);
  if (gen.chance(0.3)) sys.abus_gbs = gen.real_range(5.0, 30.0);
  if (gen.chance(0.3)) sys.abus_links_per_pair = gen.int_range(1, 4);
  if (gen.chance(0.2)) {
    sys.centaur.read_link_gbs = gen.real_range(5.0, 40.0);
    sys.centaur.write_link_gbs = sys.centaur.read_link_gbs / 2.0;
  }
  if (gen.chance(0.2)) s.mem.stream_latency_ns = gen.real_range(60.0, 300.0);
  if (gen.chance(0.2)) s.noc.ingest_cap_gbs = gen.real_range(30.0, 150.0);
  return s;
}

// ---------------------------------------------------------------------------
// Unit pins: the staircase and the simulator's analytic tiers.

TEST(Predictor, PlateauStaircaseFollowsTheHierarchy) {
  const sim::MachineSpec spec = e870();
  const predict::Predictor p(spec);
  const auto& core = spec.system.processor.core;

  EXPECT_EQ(p.plateau_level(1), sim::ServiceLevel::kL1);
  EXPECT_EQ(p.plateau_level(core.l1d_bytes), sim::ServiceLevel::kL1);
  EXPECT_EQ(p.plateau_level(core.l1d_bytes + 1), sim::ServiceLevel::kL2);
  EXPECT_EQ(p.plateau_level(core.l2_bytes), sim::ServiceLevel::kL2);
  EXPECT_EQ(p.plateau_level(core.l2_bytes + 1), sim::ServiceLevel::kL3Local);
  // The deepest finite level is still not DRAM...
  const auto& deepest = p.level(p.level_count() - 2);
  EXPECT_EQ(p.plateau_level(deepest.capacity_bytes),
            deepest.level);
  // ...and one byte past it spills to DRAM.
  EXPECT_EQ(p.plateau_level(deepest.capacity_bytes + 1),
            sim::ServiceLevel::kDram);
}

TEST(Predictor, StaircaseCapacitiesAndLatenciesAreOrdered) {
  const predict::Predictor p(e870());
  ASSERT_GE(p.level_count(), 3u);
  for (std::size_t i = 1; i < p.level_count(); ++i) {
    EXPECT_GT(p.level(i).capacity_bytes, p.level(i - 1).capacity_bytes);
    EXPECT_GE(p.level(i).latency_ns, p.level(i - 1).latency_ns);
  }
}

TEST(Predictor, BandwidthAgreesBitForBitWithTheSimTier) {
  const sim::MachineSpec spec = e870();
  const predict::Predictor p(spec);
  const sim::Machine machine(spec.system, spec.mem, spec.noc);
  const sim::RwMix mixes[] = {{1.0, 0.0}, {2.0, 1.0}, {1.0, 1.0}, {0.0, 1.0}};
  for (const auto& mix : mixes) {
    for (int chips = 1; chips <= p.chips(); ++chips)
      for (int threads = 1; threads <= 8; threads *= 2)
        EXPECT_EQ(p.stream_gbs(chips, 4, threads, mix),
                  machine.memory().stream_gbs(chips, 4, threads, mix));
    EXPECT_EQ(p.system_stream_gbs(mix), machine.memory().system_stream_gbs(mix));
  }
  for (int streams = 1; streams <= 16; streams *= 2)
    EXPECT_EQ(p.random_gbs(p.chips(), 8, 8, streams),
              machine.memory().random_gbs(p.chips(), 8, 8, streams));
}

TEST(Predictor, NocLatencyAgreesBitForBitWithTheSimTier) {
  const sim::MachineSpec spec = e870();
  const predict::Predictor p(spec);
  const sim::Machine machine(spec.system, spec.mem, spec.noc);
  for (int consumer = 0; consumer < p.chips(); ++consumer)
    for (int home = 0; home < p.chips(); ++home)
      EXPECT_EQ(p.noc_latency_ns(consumer, home),
                machine.noc().memory_latency_ns(consumer, home));
}

// ---------------------------------------------------------------------------
// Routing policy and the fallback contract.

TEST(QueryRouter, ClassifiesByPatternAndGuardBand) {
  const sim::MachineSpec spec = e870();
  predict::QueryRouter router(spec, 1);
  const auto& core = spec.system.processor.core;

  predict::Query q;
  q.kind = predict::Query::Kind::kChaseLatency;
  q.footprint_bytes = core.l2_bytes * 4;  // far from every boundary
  EXPECT_TRUE(router.analytic_servable(q));
  q.footprint_bytes = core.l2_bytes;  // exactly on a boundary
  EXPECT_FALSE(router.analytic_servable(q));
  q.footprint_bytes = core.l2_bytes * 4;
  q.dscr = 7;  // prefetched chase: only the simulator resolves it
  EXPECT_FALSE(router.analytic_servable(q));
  q.dscr = 1;
  q.pattern = ubench::ChasePattern::kForwardStride;
  EXPECT_FALSE(router.analytic_servable(q));

  predict::Query s;
  s.kind = predict::Query::Kind::kStreamLatency;
  s.stride_lines = 1;
  EXPECT_TRUE(router.analytic_servable(s));
  s.stride_lines = 256;
  EXPECT_FALSE(router.analytic_servable(s));

  predict::Query b;
  b.kind = predict::Query::Kind::kStreamBandwidth;
  EXPECT_TRUE(router.analytic_servable(b));
  b.kind = predict::Query::Kind::kRandomBandwidth;
  EXPECT_TRUE(router.analytic_servable(b));
  b.kind = predict::Query::Kind::kNocLatency;
  EXPECT_TRUE(router.analytic_servable(b));
}

TEST(QueryRouter, FallbackIsBitIdenticalToTheDirectRunAndCounted) {
  const sim::MachineSpec spec = e870();
  predict::QueryRouter router(spec, 1);
  sim::CounterRegistry registry;
  router.attach_counters(&registry);

  predict::Query boundary;
  boundary.kind = predict::Query::Kind::kChaseLatency;
  boundary.footprint_bytes = spec.system.processor.core.l2_bytes;
  predict::Query analytic;
  analytic.kind = predict::Query::Kind::kChaseLatency;
  analytic.footprint_bytes = spec.system.processor.core.l2_bytes * 4;

  const auto answers = router.answer_batch({boundary, analytic});
  ASSERT_EQ(answers.size(), 2u);
  EXPECT_FALSE(answers[0].analytic);
  EXPECT_TRUE(answers[1].analytic);

  ubench::ChaseOptions options;
  options.working_set_bytes = boundary.footprint_bytes;
  options.page_bytes = boundary.page_bytes;
  options.dscr = boundary.dscr;
  const double direct = ubench::chase_latency_ns(router.machine(), options);
  EXPECT_EQ(answers[0].value, direct);
  EXPECT_EQ(answers[1].value,
            router.predictor().chase_latency_ns(analytic.footprint_bytes));

  EXPECT_EQ(registry.value("predictor.hits"), 1u);
  EXPECT_EQ(registry.value("predictor.fallbacks"), 1u);
}

// ---------------------------------------------------------------------------
// Properties over randomized audit-clean configurations.

TEST(PredictorProperty, ChaseLatencyMonotoneInFootprint) {
  P8_PROP(gen, 120, 0xfeedf00d) {
    const sim::MachineSpec spec = random_spec(gen);
    if (!spec.audit().ok()) continue;
    const predict::Predictor p(spec);
    const std::uint64_t page = gen.chance(0.5) ? 64 * 1024 : 16ull << 20;
    std::uint64_t footprint = gen.range(4 * 1024, 256 * 1024);
    double prev = p.chase_latency_ns(footprint, page);
    for (int step = 0; step < 12; ++step) {
      footprint += gen.range(footprint / 2, footprint * 3);
      const double next = p.chase_latency_ns(footprint, page);
      EXPECT_LE(prev, next + 1e-9)
          << "latency fell from " << prev << " to " << next << " at footprint "
          << footprint;
      prev = next;
    }
  }
}

TEST(PredictorProperty, RoofOrderingMatchesPlateauOrdering) {
  P8_PROP(gen, 120, 0x400fbeef) {
    const sim::MachineSpec spec = random_spec(gen);
    if (!spec.audit().ok()) continue;
    const predict::Predictor p(spec);
    // Plateau ordering: deeper levels cost more and hold more.
    for (std::size_t i = 1; i < p.level_count(); ++i) {
      EXPECT_GT(p.level(i).capacity_bytes, p.level(i - 1).capacity_bytes);
      EXPECT_GE(p.level(i).latency_ns, p.level(i - 1).latency_ns);
    }
    // Roof ordering: more chips/threads/streams never lowers a roof.
    const sim::RwMix mix{2.0, 1.0};
    const int cores = spec.system.cores_per_chip;
    const int smt = spec.system.processor.core.smt_threads;
    double prev = 0.0;
    for (int chips = 1; chips <= p.chips(); ++chips) {
      const double roof = p.stream_gbs(chips, cores, smt, mix);
      EXPECT_GE(roof, prev);
      prev = roof;
    }
    prev = 0.0;
    for (int threads = 1; threads <= smt; threads *= 2) {
      const double roof = p.stream_gbs(1, cores, threads, mix);
      EXPECT_GE(roof, prev);
      prev = roof;
    }
    prev = 0.0;
    for (int streams = 1; streams <= 32; streams *= 2) {
      const double roof = p.random_gbs(1, cores, smt, streams);
      EXPECT_GE(roof, prev);
      prev = roof;
    }
  }
}

TEST(PredictorProperty, AuditCleanSpecsPredictFiniteAndPositive) {
  int clean = 0;
  P8_PROP(gen, 200, 0x9d1c7a11) {
    const sim::MachineSpec spec = random_spec(gen);
    if (!spec.audit().ok()) continue;
    ++clean;
    const predict::Predictor p(spec);
    const sim::RwMix mix{gen.real_range(0.0, 4.0), 1.0};
    const std::uint64_t footprint = gen.range(1, 1ull << 36);
    const int chip = gen.int_range(0, p.chips() - 1);
    const int smt = spec.system.processor.core.smt_threads;
    const double values[] = {
        p.chase_latency_ns(footprint, gen.chance(0.5) ? 64 * 1024 : 16ull << 20,
                           chip, 0),
        p.stream_latency_ns(gen.int_range(0, 7), chip, 0),
        p.stream_gbs(gen.int_range(1, p.chips()), spec.system.cores_per_chip,
                     gen.int_range(1, smt), mix),
        p.system_stream_gbs(mix),
        p.random_gbs(1, spec.system.cores_per_chip, smt, gen.int_range(1, 64)),
        p.noc_latency_ns(chip, gen.int_range(0, p.chips() - 1)),
    };
    for (double v : values) {
      EXPECT_TRUE(std::isfinite(v)) << "non-finite prediction";
      EXPECT_GT(v, 0.0) << "non-positive prediction";
    }
  }
  // The generator must actually exercise the predictor, not skip
  // everything.
  EXPECT_GT(clean, 20);
}

}  // namespace
