// MachineSpec serialization, registry and differential tests.
//
// The two contracts the registry ships under:
//  * JSON round-trips are byte-identical (save -> load -> save), so a
//    spec file is a stable artifact, diffable and checksummable;
//  * the registry-loaded e870 is the *same machine* as the spec the
//    benches were calibrated against — bit-identical simulated
//    results, not merely close ones.  This is what licensed deleting
//    the old hard-coded Machine::e870() constructor.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <vector>

#include "arch/spec.hpp"
#include "sim/counters.hpp"
#include "sim/machine/spec.hpp"
#include "ubench/workloads.hpp"

namespace {

using namespace p8;

TEST(MachineSpecJson, RoundTripIsByteIdentical) {
  for (const std::string& name : sim::machine_names()) {
    const sim::MachineSpec spec = sim::machine_spec(name);
    const std::string first = spec.to_json();
    const sim::MachineSpec reloaded = sim::MachineSpec::from_json(first);
    EXPECT_EQ(reloaded, spec) << name;
    EXPECT_EQ(reloaded.to_json(), first) << name;
  }
}

TEST(MachineSpecJson, MissingMembersKeepDefaults) {
  const sim::MachineSpec spec = sim::MachineSpec::from_json(
      R"({"system": {"sockets": 2}})");
  EXPECT_EQ(spec.system.sockets, 2);
  // Everything unspecified stays at the default-constructed value.
  sim::MachineSpec defaults;
  defaults.system.sockets = 2;
  EXPECT_EQ(spec, defaults);
}

TEST(MachineSpecJson, UnknownMemberIsAnErrorWithPath) {
  try {
    (void)sim::MachineSpec::from_json(R"({"system": {"socketz": 8}})");
    FAIL() << "a typo must not silently simulate the default";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("spec.system"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("socketz"), std::string::npos)
        << e.what();
  }
}

TEST(MachineSpecJson, TypeAndRangeErrorsCarryThePath) {
  EXPECT_THROW((void)sim::MachineSpec::from_json(
                   R"({"system": {"sockets": "eight"}})"),
               std::invalid_argument);
  EXPECT_THROW(
      (void)sim::MachineSpec::from_json(R"({"system": {"sockets": 2.5}})"),
      std::invalid_argument);
  EXPECT_THROW((void)sim::MachineSpec::from_json(R"({"name": 7})"),
               std::invalid_argument);
}

TEST(MachineSpecJson, MalformedDocumentsAreRejected) {
  EXPECT_THROW((void)sim::MachineSpec::from_json("{"), std::invalid_argument);
  EXPECT_THROW((void)sim::MachineSpec::from_json("[1, 2]"),
               std::invalid_argument);
  EXPECT_THROW((void)sim::MachineSpec::from_json(
                   R"({"system": {"sockets": 1, "sockets": 2}})"),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------

TEST(MachineRegistry, EveryPresetIsFullyAuditClean) {
  // Not just free of errors: a shipped preset carrying even a warning
  // would gate-spam every bench run that selects it.
  for (const std::string& name : sim::machine_names()) {
    const sim::AuditReport report = sim::machine_spec(name).audit();
    EXPECT_TRUE(report.ok()) << name << "\n" << report.to_string();
    EXPECT_EQ(report.diagnostics.size(), 0u)
        << name << " carries warnings:\n"
        << report.to_string();
  }
}

TEST(MachineRegistry, LookupContract) {
  EXPECT_TRUE(sim::has_machine_spec("e870"));
  EXPECT_FALSE(sim::has_machine_spec("e999"));
  try {
    (void)sim::machine_spec("e999");
    FAIL();
  } catch (const std::invalid_argument& e) {
    // The error must teach: every known name listed.
    for (const std::string& name : sim::machine_names())
      EXPECT_NE(std::string(e.what()).find(name), std::string::npos)
          << e.what();
  }
}

TEST(MachineRegistry, LoadFromJsonFileMatchesRegistry) {
  const std::string path = "machine_spec_test_e880.json";
  {
    std::ofstream out(path, std::ios::binary);
    out << sim::machine_spec("e880").to_json();
  }
  EXPECT_EQ(sim::load_machine_spec(path), sim::machine_spec("e880"));
  std::remove(path.c_str());

  EXPECT_THROW((void)sim::load_machine_spec("no_such_file.json"),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------

std::uint64_t fnv1a(const void* data, std::size_t len, std::uint64_t h) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t sweep_checksum(const std::vector<ubench::LatencyPoint>& pts) {
  std::uint64_t h = 14695981039346656037ull;
  for (const auto& p : pts) {
    h = fnv1a(&p.working_set_bytes, sizeof(p.working_set_bytes), h);
    h = fnv1a(&p.latency_ns, sizeof(p.latency_ns), h);
  }
  return h;
}

TEST(MachineSpecDifferential, RegistryE870MatchesLegacyConstructorBitForBit) {
  // The machine the pre-registry benches simulated: the arch::e870()
  // system spec with default model parameters, constructed directly.
  const sim::Machine legacy(arch::e870());
  const sim::Machine from_registry = sim::machine_spec("e870").machine();

  ASSERT_TRUE(from_registry.spec() == legacy.spec());

  // Same Fig. 2-style sweep through both, counters on: the simulated
  // latencies must agree to the last mantissa bit and the event
  // streams must agree event for event.
  const std::vector<std::uint64_t> sizes = {
      32 * 1024, 256 * 1024, 4u << 20, 32u << 20, 96u << 20, 512u << 20};
  sim::CounterRegistry legacy_counters, registry_counters;
  const auto legacy_points =
      ubench::memory_latency_scan(legacy, sizes, 64 * 1024, 1,
                                  &legacy_counters);
  const auto registry_points =
      ubench::memory_latency_scan(from_registry, sizes, 64 * 1024, 1,
                                  &registry_counters);

  EXPECT_EQ(sweep_checksum(registry_points), sweep_checksum(legacy_points));
  EXPECT_EQ(registry_counters.snapshot(), legacy_counters.snapshot());

  // The analytic models too: Table III / Table IV quantities.
  EXPECT_EQ(from_registry.memory().system_stream_gbs({2, 1}),
            legacy.memory().system_stream_gbs({2, 1}));
  EXPECT_EQ(from_registry.noc().one_direction_gbs(0, 4),
            legacy.noc().one_direction_gbs(0, 4));
  EXPECT_EQ(from_registry.noc().memory_latency_ns(0, 1),
            legacy.noc().memory_latency_ns(0, 1));
}

}  // namespace
