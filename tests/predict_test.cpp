// Tests for the SpMV performance predictor (cache replay + bandwidth
// model).
#include <gtest/gtest.h>

#include "graph/matrices.hpp"
#include "graph/rmat.hpp"
#include "predict/spmv_predict.hpp"

namespace p8::predict {
namespace {

const sim::Machine& machine() {
  static const sim::Machine m = sim::Machine(arch::e870());
  return m;
}

TEST(SpmvPredict, DenseKeepsXInCache) {
  const auto p = predict_csr_spmv(graph::dense_matrix(400), machine());
  EXPECT_GT(p.x_hit_fraction, 0.99);
  // Compulsory traffic only: ~12 B/nnz.
  EXPECT_NEAR(p.bytes_per_nnz, 12.0, 1.0);
}

TEST(SpmvPredict, BandedBeatsScaleFree) {
  const auto banded =
      predict_csr_spmv(graph::fem_banded(20000, 3, 12, 50, 1), machine());
  const auto scale_free =
      predict_csr_spmv(graph::power_law(120000, 3.1, 2.3, 2), machine());
  EXPECT_GT(banded.x_hit_fraction, scale_free.x_hit_fraction);
  EXPECT_GT(banded.gflops, scale_free.gflops);
}

TEST(SpmvPredict, HitRateFallsWithRmatScale) {
  // Below ~scale 16 the whole input vector fits the modelled 192 MB of
  // on-chip+L4 capacity, so compare scales where x genuinely outgrows
  // the hierarchy.
  auto hit = [&](int scale) {
    graph::RmatOptions o;
    o.scale = scale;
    o.edge_factor = 16;
    return predict_csr_spmv(graph::rmat_adjacency(o), machine())
        .x_hit_fraction;
  };
  const double h16 = hit(16);
  const double h18 = hit(18);
  const double h20 = hit(20);
  EXPECT_LT(h18, h16 - 0.001);
  EXPECT_LT(h20, h18 - 0.005);
}

TEST(SpmvPredict, BoundedByTheBandwidthCeiling) {
  // 2 flops / 12 bytes at the best mix is the absolute SpMV ceiling.
  const double ceiling =
      2.0 / 12.0 * machine().memory().system_stream_gbs({1, 0});
  for (const auto& entry : graph::figure11_suite(0.2)) {
    const auto p = predict_csr_spmv(entry.matrix, machine());
    EXPECT_LE(p.gflops, ceiling * 1.01) << entry.name;
    EXPECT_GT(p.gflops, 0.0) << entry.name;
  }
}

TEST(SpmvPredict, MoreMissesMeanMoreBytes) {
  const auto p = predict_csr_spmv(graph::random_uniform(200000, 4, 3),
                                  machine());
  // Every miss drags a 128 B line: bytes/nnz must reflect the misses.
  const double expected =
      12.0 + (1.0 - p.x_hit_fraction) * 128.0 + 16.0 * (1.0 / 4.0);
  EXPECT_NEAR(p.bytes_per_nnz, expected, 0.5);
}

TEST(SpmvPredict, SampleCapRespected) {
  SpmvPredictOptions opts;
  opts.sample_nnz = 1000;
  const auto p = predict_csr_spmv(graph::random_uniform(50000, 8, 4),
                                  machine(), opts);
  EXPECT_GT(p.gflops, 0.0);  // still produces a sane prediction
}

TEST(SpmvPredict, EmptyMatrixRejected) {
  const auto empty = graph::CsrMatrix::from_triplets(10, 10, {});
  EXPECT_THROW(predict_csr_spmv(empty, machine()), std::invalid_argument);
}

// ----------------------------------------------------------------- tiled ---

TEST(TiledPredict, MatchesShapeVariant) {
  graph::RmatOptions o;
  o.scale = 14;
  o.edge_factor = 16;
  const auto a = graph::rmat_adjacency(o);
  const auto from_matrix = predict_tiled_spmv(a, machine());
  const auto from_shape =
      predict_tiled_spmv_shape(a.rows(), a.nnz(), machine());
  EXPECT_NEAR(from_matrix.gflops, from_shape.gflops,
              from_shape.gflops * 0.02);
}

TEST(TiledPredict, LongStreamsAreEfficient) {
  // Small scale: huge tiles, efficiency ~1.
  const auto p = predict_tiled_spmv_shape(1u << 20, 32u << 20, machine());
  EXPECT_GT(p.stream_efficiency, 0.95);
}

TEST(TiledPredict, TinyTilesLoseEfficiency) {
  // Paper scale 31: ~63 nnz per tile, "roughly 4 cache lines".
  const auto p =
      predict_tiled_spmv_shape(1ull << 31, 32ull << 31, machine());
  EXPECT_NEAR(p.mean_tile_nnz, 63.0, 10.0);
  EXPECT_LT(p.stream_efficiency, 0.3);
}

TEST(TiledPredict, CrossoverAtPaperScales) {
  // The Figure 12 story: at host-like scales CSR wins (x fits the
  // hierarchy); past the capacity wall the tiled algorithm wins by
  // 2-4x; by scale 31 the advantage shrinks again as tiles empty.
  auto ratio = [&](int scale) {
    const std::uint64_t n = 1ull << scale;
    const std::uint64_t nnz = 32ull * n;
    return predict_tiled_spmv_shape(n, nnz, machine()).gflops /
           predict_csr_spmv_shape(n, nnz, machine()).gflops;
  };
  EXPECT_LT(ratio(22), 1.0);   // CSR wins while x is cache resident
  EXPECT_GT(ratio(26), 2.0);   // tiled wins in the paper's mid range
  EXPECT_GT(ratio(28), 2.0);
  EXPECT_GT(ratio(31), 1.0);   // still ahead, but decaying
  EXPECT_LT(ratio(31), ratio(27));
}

TEST(TiledPredict, DecayWithScaleBeyondCrossover) {
  double prev = 1e9;
  for (const int scale : {26, 28, 30}) {
    const std::uint64_t n = 1ull << scale;
    const auto p = predict_tiled_spmv_shape(n, 32ull * n, machine());
    EXPECT_LT(p.gflops, prev) << "scale " << scale;
    prev = p.gflops;
  }
}

TEST(CsrShapePredict, CapacityWall) {
  // x-hit collapses once 8n outgrows ~154 MB of usable cache.
  const auto small = predict_csr_spmv_shape(1u << 22, 1ull << 27, machine());
  const auto large = predict_csr_spmv_shape(1ull << 28, 1ull << 33, machine());
  EXPECT_DOUBLE_EQ(small.x_hit_fraction, 1.0);
  EXPECT_LT(large.x_hit_fraction, 0.1);
  EXPECT_LT(large.gflops, small.gflops / 4.0);
}

}  // namespace
}  // namespace p8::predict
