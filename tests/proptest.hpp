// Tiny property-based testing harness for the simulator tests.
//
// A property is an ordinary gtest body run against many generated
// inputs.  P8_PROP drives the loop deterministically — the case seeds
// are a pure function of the base seed, so CI failures reproduce
// anywhere — and when a case fails it reports that case's seed, so the
// failing input can be rebuilt in isolation:
//
//   TEST(CacheProperty, OccupancyBounded) {
//     P8_PROP(gen, 200, 0xc0ffee) {
//       const auto cfg = random_config(gen);   // gen: proptest::Gen
//       ...EXPECT_LE(...);
//     }
//   }
//
// The loop stops at the first failing case (later cases would only
// repeat the noise), announcing "falsified by case K (seed 0x...)".
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <initializer_list>

namespace p8::proptest {

/// Deterministic xorshift64* generator — self-contained so property
/// inputs never depend on the standard library's distribution
/// implementations (which may differ across platforms).
class Gen {
 public:
  explicit Gen(std::uint64_t seed)
      : state_(seed != 0 ? seed : 0x9e3779b97f4a7c15ull) {}

  std::uint64_t u64() {
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 0x2545f4914f6cdd1dull;
  }

  /// Uniform in [lo, hi] (inclusive); lo must be <= hi.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi) {
    return lo + u64() % (hi - lo + 1);
  }

  int int_range(int lo, int hi) {
    return lo +
           static_cast<int>(u64() % (static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform in [0, 1).
  double unit() { return static_cast<double>(u64() >> 11) * 0x1.0p-53; }

  double real_range(double lo, double hi) { return lo + unit() * (hi - lo); }

  bool chance(double p) { return unit() < p; }

  /// One element of a small literal list, uniformly.
  template <typename T>
  T pick(std::initializer_list<T> options) {
    return options.begin()[u64() % options.size()];
  }

 private:
  std::uint64_t state_;
};

/// Loop state behind P8_PROP; see the macro.
class PropCase {
 public:
  PropCase(int cases, std::uint64_t base_seed)
      : cases_(cases), base_seed_(base_seed) {}

  bool next() {
    if (index_ >= 0 && ::testing::Test::HasFailure()) {
      ADD_FAILURE() << "property falsified by case " << index_ << " of "
                    << cases_ << " (case seed 0x" << std::hex << seed()
                    << std::dec
                    << ") — rebuild the input with proptest::Gen(that seed)";
      return false;
    }
    ++index_;
    armed_ = index_ < cases_;
    return armed_;
  }

  /// Seed of the current case: a splitmix-style stream over the base
  /// seed, so case k is reproducible without running cases 0..k-1.
  std::uint64_t seed() const {
    return base_seed_ + 0x9e3779b97f4a7c15ull *
                            (static_cast<std::uint64_t>(index_) + 1);
  }

  bool armed() const { return armed_; }
  void disarm() { armed_ = false; }

 private:
  int cases_;
  std::uint64_t base_seed_;
  int index_ = -1;
  bool armed_ = false;
};

}  // namespace p8::proptest

/// Runs the following block `cases` times with `gen` bound to a fresh
/// deterministic generator per case.  Stops at the first gtest failure
/// inside the block and reports the failing case's seed.
#define P8_PROP(gen, cases, base_seed)                                  \
  for (p8::proptest::PropCase p8_prop_case_((cases), (base_seed));      \
       p8_prop_case_.next();)                                           \
    for (p8::proptest::Gen gen(p8_prop_case_.seed());                   \
         p8_prop_case_.armed(); p8_prop_case_.disarm())
