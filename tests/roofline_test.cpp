// Tests for the roofline model (Figure 9).
#include <gtest/gtest.h>

#include "arch/spec.hpp"
#include "roofline/energy.hpp"
#include "roofline/roofline.hpp"

namespace p8::roofline {
namespace {

RooflineModel e870_roofline() {
  return RooflineModel::from_spec(arch::e870());
}

TEST(Roofline, E870Roofs) {
  const auto r = e870_roofline();
  EXPECT_NEAR(r.peak_gflops(), 2227.0, 1.0);
  EXPECT_NEAR(r.mem_gbs(), 1843.0, 1.0);
  EXPECT_NEAR(r.write_only_gbs(), 614.0, 1.0);
}

TEST(Roofline, RidgeIsOnePointTwo) {
  EXPECT_NEAR(e870_roofline().ridge_oi(), 1.2, 0.05);
}

TEST(Roofline, MemoryBoundBelowRidge) {
  const auto r = e870_roofline();
  const double oi = 0.5;
  EXPECT_DOUBLE_EQ(r.attainable_gflops(oi), oi * r.mem_gbs());
}

TEST(Roofline, ComputeBoundAboveRidge) {
  const auto r = e870_roofline();
  EXPECT_DOUBLE_EQ(r.attainable_gflops(10.0), r.peak_gflops());
}

TEST(Roofline, LbmhdExpectations) {
  // Paper: at OI ~ 1, expected peak 1,843 GFLOP/s on the optimal-mix
  // roof but only 614 GFLOP/s if write-dominated.
  const auto r = e870_roofline();
  EXPECT_NEAR(r.attainable_gflops(1.0), 1843.0, 1.0);
  EXPECT_NEAR(r.attainable_gflops(1.0, /*write_only=*/true), 614.0, 1.0);
}

TEST(Roofline, WriteRoofIsLessThanHalf) {
  const auto r = e870_roofline();
  for (const double oi : {0.1, 0.5, 1.0}) {
    EXPECT_LT(r.attainable_gflops(oi, true),
              0.5 * r.attainable_gflops(oi));
  }
}

TEST(Roofline, WriteRidgeIsFartherRight) {
  const auto r = e870_roofline();
  EXPECT_GT(r.ridge_oi_write_only(), r.ridge_oi());
}

TEST(Roofline, SweepIsMonotoneAndCapped) {
  const auto r = e870_roofline();
  const auto points = r.sweep(0.01, 100.0, 50);
  ASSERT_EQ(points.size(), 50u);
  double prev = 0.0;
  for (const auto& p : points) {
    EXPECT_GE(p.gflops, prev);
    EXPECT_LE(p.gflops, r.peak_gflops() + 1e-9);
    prev = p.gflops;
  }
  EXPECT_DOUBLE_EQ(points.back().gflops, r.peak_gflops());
}

TEST(Roofline, KernelCatalogue) {
  const auto kernels = figure9_kernels();
  ASSERT_EQ(kernels.size(), 4u);
  EXPECT_EQ(kernels[0].name, "SpMV");
  EXPECT_EQ(kernels[3].name, "3D FFT");
  // SpMV, Stencil and LBMHD sit below the 1.2 ridge (memory bound);
  // 3D FFT, at OI 1.64, just crosses into the compute-bound region —
  // the E870's balance puts the ridge unusually low.
  const auto r = e870_roofline();
  for (const auto& k : kernels) {
    EXPECT_GT(k.operational_intensity, 0.0);
    EXPECT_LT(k.operational_intensity, 2.0);
  }
  for (std::size_t i = 0; i < 3; ++i)
    EXPECT_LT(r.attainable_gflops(kernels[i].operational_intensity),
              r.peak_gflops());
  EXPECT_DOUBLE_EQ(r.attainable_gflops(kernels[3].operational_intensity),
                   r.peak_gflops());
}

TEST(Roofline, Validation) {
  EXPECT_THROW(RooflineModel(0, 1, 1), std::invalid_argument);
  EXPECT_THROW(RooflineModel(1, 1, 2), std::invalid_argument);
  const auto r = e870_roofline();
  EXPECT_THROW(r.attainable_gflops(0.0), std::invalid_argument);
  EXPECT_THROW(r.sweep(1.0, 0.5, 10), std::invalid_argument);
  EXPECT_THROW(r.sweep(0.1, 1.0, 1), std::invalid_argument);
}

// ----------------------------------------------------------------- energy --

EnergyRoofline e870_energy() {
  return EnergyRoofline(e870_roofline());
}

TEST(EnergyRoofline, DynamicEnergyAsymptotes) {
  const auto e = e870_energy();
  const EnergyParams p;
  // At huge intensity only flop energy remains...
  EXPECT_NEAR(e.dynamic_pj_per_flop(1e9), p.pj_per_flop, 0.01);
  // ...at tiny intensity byte energy dominates: pi + eps/oi.
  EXPECT_NEAR(e.dynamic_pj_per_flop(0.01), p.pj_per_flop + 100.0 * p.pj_per_byte,
              1.0);
}

TEST(EnergyRoofline, EfficiencyMonotoneInIntensity) {
  const auto e = e870_energy();
  double prev = 0.0;
  for (double oi = 0.05; oi < 50.0; oi *= 2.0) {
    const double eff = e.gflops_per_watt(oi);
    EXPECT_GT(eff, prev) << "oi " << oi;
    prev = eff;
  }
}

TEST(EnergyRoofline, EnergyBalanceRightOfPerformanceRidge) {
  // The energy balance point (eps/pi ~ 3.1) lies past the 1.2
  // performance ridge: even compute-bound kernels on the E870 pay
  // mostly for data movement.
  const auto e = e870_energy();
  EXPECT_GT(e.energy_balance_oi(), e870_roofline().ridge_oi());
}

TEST(EnergyRoofline, ConstantPowerHurtsSlowKernels) {
  // A memory-bound kernel runs longer, so the constant-power term adds
  // proportionally more energy per flop.
  const auto e = e870_energy();
  const double slow_overhead =
      e.total_pj_per_flop(0.1) - e.dynamic_pj_per_flop(0.1);
  const double fast_overhead =
      e.total_pj_per_flop(10.0) - e.dynamic_pj_per_flop(10.0);
  EXPECT_GT(slow_overhead, 5.0 * fast_overhead);
}

TEST(EnergyRoofline, PowerBetweenStaticAndStaticPlusDynamicMax) {
  const auto e = e870_energy();
  const EnergyParams p;
  for (const double oi : {0.1, 1.0, 10.0}) {
    EXPECT_GT(e.power_watts(oi), p.constant_watts);
    // Dynamic power is bounded by peak flops x pi + peak bytes x eps.
    const double bound = p.constant_watts +
                         (2227.2 * p.pj_per_flop + 1843.2 * p.pj_per_byte) /
                             1000.0;
    EXPECT_LT(e.power_watts(oi), bound);
  }
}

TEST(EnergyRoofline, UnitsSanity) {
  // GFLOP/s/W * pJ/flop must invert to 1000.
  const auto e = e870_energy();
  const double oi = 0.7;
  EXPECT_NEAR(e.gflops_per_watt(oi) * e.total_pj_per_flop(oi), 1000.0,
              1e-6);
}

TEST(EnergyRoofline, Validation) {
  EnergyParams bad;
  bad.pj_per_flop = 0.0;
  EXPECT_THROW(EnergyRoofline(e870_roofline(), bad), std::invalid_argument);
  EXPECT_THROW(e870_energy().dynamic_pj_per_flop(0.0),
               std::invalid_argument);
}

class RooflineBalance : public ::testing::TestWithParam<double> {};

TEST_P(RooflineBalance, AttainableIsMinOfRoofs) {
  const auto r = e870_roofline();
  const double oi = GetParam();
  EXPECT_DOUBLE_EQ(r.attainable_gflops(oi),
                   std::min(r.peak_gflops(), oi * r.mem_gbs()));
}

INSTANTIATE_TEST_SUITE_P(Intensities, RooflineBalance,
                         ::testing::Values(0.01, 0.1, 0.25, 0.5, 1.0, 1.2,
                                           1.5, 2.0, 8.0, 64.0));

}  // namespace
}  // namespace p8::roofline
