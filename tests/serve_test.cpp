// Black-box harness for the p8serve daemon (src/serve, docs/SERVE.md).
//
// The daemon's whole contract is driven from the outside: a real
// Server on a real Unix-domain socket, spoken to through the line
// protocol only.  The layers get their own sections too — protocol
// parsing/rendering (pure functions), the content-addressed
// ResultCache (single-flight + LRU contracts), Server::handle_line
// (transport-free request dispatch) — and the daemon-level sections
// then pin what the stack guarantees end to end:
//
//  * every answer, cached or fresh, is byte-identical to running the
//    Predictor / event simulator directly;
//  * hostile input (garbage, oversized, truncated, schema-violating
//    frames) gets a schema-checked error response and never kills
//    the daemon;
//  * seeded random query streams from N concurrent clients produce
//    bit-identical answers to a single-client serial replay, with
//    `serve.cache_hits` exactly the stream's duplicate count
//    (single-flight dedup makes that deterministic);
//  * crash recovery: a stale socket file is reclaimed, a live daemon
//    or a non-socket file is refused.
//
// Concurrency-heavy cases carry "Concurrent" in their names so the
// CI TSan job can select them with --gtest_filter=*Concurrent*.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <map>
#include <set>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/json.hpp"
#include "predict/machine_predict.hpp"
#include "proptest.hpp"
#include "serve/cache.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "sim/machine/spec.hpp"

namespace p8 {
namespace {

// ---- helpers --------------------------------------------------------------

std::string test_socket_path() {
  static std::atomic<int> next{0};
  return "/tmp/p8s-" + std::to_string(::getpid()) + "-" +
         std::to_string(next.fetch_add(1)) + ".sock";
}

serve::ServerOptions daemon_options() {
  serve::ServerOptions options;
  options.socket_path = test_socket_path();
  options.sim_threads = 2;  // keep test pools small
  return options;
}

/// In-process daemon on a real socket, torn down on scope exit.
struct Daemon {
  explicit Daemon(const serve::ServerOptions& options)
      : server(options) {
    server.start();
  }
  ~Daemon() { server.stop(); }
  const std::string& path() const { return server.options().socket_path; }
  serve::Server server;
};

/// A deterministically simulation-required chase query (DSCR >= 2 is
/// never analytic-servable) with a working set small enough that the
/// event simulator answers in microseconds.
std::string chase_line(std::uint64_t footprint_bytes, int dscr = 2) {
  return "{\"verb\": \"query\", \"machine\": \"e870\", \"query\": "
         "{\"kind\": \"chase-latency\", \"footprint_bytes\": " +
         std::to_string(footprint_bytes) +
         ", \"dscr\": " + std::to_string(dscr) + "}}";
}

predict::Query chase_query(std::uint64_t footprint_bytes, int dscr = 2) {
  predict::Query q;
  q.kind = predict::Query::Kind::kChaseLatency;
  q.footprint_bytes = footprint_bytes;
  q.dscr = dscr;
  return q;
}

common::Json parse_response(const std::string& response) {
  return common::Json::parse(response);
}

double response_value(const std::string& response) {
  const common::Json doc = parse_response(response);
  const common::Json* value = doc.find("value");
  EXPECT_NE(value, nullptr) << response;
  return value != nullptr ? value->number : 0.0;
}

bool response_ok(const std::string& response) {
  const common::Json doc = parse_response(response);
  const common::Json* ok = doc.find("ok");
  return ok != nullptr && ok->kind == common::Json::Kind::kBool &&
         ok->boolean;
}

bool response_cached(const std::string& response) {
  const common::Json doc = parse_response(response);
  const common::Json* cached = doc.find("cached");
  return cached != nullptr && cached->boolean;
}

/// Every error response must be exactly {"id"?: N, "ok": false,
/// "error": "<nonempty>"} — no extra members, no other shapes.
void check_error_schema(const std::string& response,
                        bool expect_id = false) {
  SCOPED_TRACE(response);
  const common::Json doc = parse_response(response);
  ASSERT_EQ(doc.kind, common::Json::Kind::kObject);
  std::size_t expected_members = 2;
  const common::Json* id = doc.find("id");
  if (expect_id) {
    ASSERT_NE(id, nullptr);
    EXPECT_EQ(id->kind, common::Json::Kind::kNumber);
    ++expected_members;
  } else {
    EXPECT_EQ(id, nullptr);
  }
  EXPECT_EQ(doc.object.size(), expected_members);
  const common::Json* ok = doc.find("ok");
  ASSERT_NE(ok, nullptr);
  EXPECT_EQ(ok->kind, common::Json::Kind::kBool);
  EXPECT_FALSE(ok->boolean);
  const common::Json* error = doc.find("error");
  ASSERT_NE(error, nullptr);
  ASSERT_EQ(error->kind, common::Json::Kind::kString);
  EXPECT_FALSE(error->string.empty());
}

std::uint64_t stat_of(const std::string& stats_response,
                      const std::string& name) {
  const common::Json doc = parse_response(stats_response);
  const common::Json* stats = doc.find("stats");
  EXPECT_NE(stats, nullptr) << stats_response;
  if (stats == nullptr) return 0;
  const common::Json* value = stats->find(name);
  EXPECT_NE(value, nullptr) << name << " missing in " << stats_response;
  return value == nullptr ? 0 : static_cast<std::uint64_t>(value->number);
}

/// Raw byte-level socket access, for frames the Client helper cannot
/// produce (truncated, unterminated).
int raw_connect(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof addr),
            0);
  return fd;
}

std::string raw_read_all(int fd) {
  std::string out;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof buf)) > 0)
    out.append(buf, static_cast<std::size_t>(n));
  return out;
}

// ---- protocol: parsing ----------------------------------------------------

TEST(ServeProtocolTest, ParsesFullSingleQuery) {
  const serve::Request r = serve::parse_request(
      "{\"verb\": \"query\", \"id\": 12, \"machine\": \"e880\", "
      "\"query\": {\"kind\": \"stream-bandwidth\", \"chips\": 4, "
      "\"cores\": 8, \"threads\": 8, \"read\": 1, \"write\": 0}}");
  EXPECT_EQ(r.verb, serve::Request::Verb::kQuery);
  ASSERT_TRUE(r.id.has_value());
  EXPECT_EQ(*r.id, 12u);
  EXPECT_EQ(r.machine_name, "e880");
  EXPECT_TRUE(r.machine_inline_json.empty());
  ASSERT_EQ(r.queries.size(), 1u);
  EXPECT_FALSE(r.batch);
  EXPECT_EQ(r.queries[0].kind, predict::Query::Kind::kStreamBandwidth);
  EXPECT_EQ(r.queries[0].chips, 4);
  EXPECT_EQ(r.queries[0].mix.read, 1.0);
  EXPECT_EQ(r.queries[0].mix.write, 0.0);
}

TEST(ServeProtocolTest, ParsesBatchInArrayOrder) {
  const serve::Request r = serve::parse_request(
      "{\"verb\": \"query\", \"machine\": \"e870\", \"queries\": "
      "[{\"kind\": \"noc-latency\", \"home_chip\": 3}, "
      "{\"kind\": \"chase-latency\", \"footprint_bytes\": 4096}]}");
  EXPECT_TRUE(r.batch);
  ASSERT_EQ(r.queries.size(), 2u);
  EXPECT_EQ(r.queries[0].kind, predict::Query::Kind::kNocLatency);
  EXPECT_EQ(r.queries[0].home_chip, 3);
  EXPECT_EQ(r.queries[1].footprint_bytes, 4096u);
}

TEST(ServeProtocolTest, InlineMachineCanonicalizes) {
  const serve::Request r = serve::parse_request(
      "{\"verb\": \"query\", \"machine\": { \"system\" :\n"
      "{ \"name\" : \"x\" } }, \"query\": {\"kind\": \"noc-latency\"}}");
  EXPECT_TRUE(r.machine_name.empty());
  // Whitespace-insensitive: the inline object re-renders compactly.
  EXPECT_EQ(r.machine_inline_json, "{\"system\":{\"name\":\"x\"}}");
}

TEST(ServeProtocolTest, SyntaxErrorCarriesLineAndColumn) {
  try {
    serve::parse_request("{\"verb\": \n oops}");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("column"), std::string::npos)
        << e.what();
  }
}

void expect_parse_error(const std::string& line,
                        const std::string& needle) {
  try {
    serve::parse_request(line);
    FAIL() << "accepted: " << line;
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "diagnostic \"" << e.what() << "\" lacks \"" << needle << "\"";
  }
}

TEST(ServeProtocolTest, SchemaViolationsNameTheOffendingPath) {
  expect_parse_error("[1, 2]", "must be an object");
  expect_parse_error("{\"machine\": \"e870\"}", "missing \"verb\"");
  expect_parse_error("{\"verb\": \"frobnicate\"}", "unknown verb");
  expect_parse_error("{\"verb\": \"query\", \"bogus\": 1}",
                     "unknown member \"bogus\"");
  expect_parse_error(
      "{\"verb\": \"query\", \"machine\": \"e870\", "
      "\"query\": {\"kind\": \"chase-latency\", \"typo\": 1}}",
      "unknown member \"query.typo\"");
  expect_parse_error(
      "{\"verb\": \"query\", \"machine\": \"e870\", \"queries\": "
      "[{\"kind\": \"chase-latency\"}, {\"oops\": 1}]}",
      "queries[1].oops");
  expect_parse_error(
      "{\"verb\": \"query\", \"machine\": \"e870\", "
      "\"query\": {\"kind\": 3}}",
      "query.kind must be a string");
  expect_parse_error(
      "{\"verb\": \"query\", \"machine\": \"e870\", "
      "\"query\": {\"kind\": \"warp-drive\"}}",
      "chase-latency|stream-latency");
  expect_parse_error(
      "{\"verb\": \"query\", \"machine\": \"e870\", "
      "\"query\": {\"kind\": \"chase-latency\", \"dscr\": 99}}",
      "query.dscr must be between 0 and 7");
  expect_parse_error(
      "{\"verb\": \"query\", \"machine\": \"e870\", "
      "\"query\": {\"kind\": \"chase-latency\", "
      "\"footprint_bytes\": 1.5}}",
      "non-negative integer");
  expect_parse_error(
      "{\"verb\": \"query\", \"machine\": \"e870\", "
      "\"query\": {\"kind\": \"chase-latency\", \"read\": -1}}",
      "mix must be non-negative");
  expect_parse_error("{\"verb\": \"ping\", \"machine\": \"e870\"}",
                     "only valid with verb \"query\"");
  expect_parse_error("{\"verb\": \"query\", \"machine\": \"e870\"}",
                     "exactly one of");
  expect_parse_error(
      "{\"verb\": \"query\", \"machine\": \"e870\", "
      "\"query\": {\"kind\": \"noc-latency\"}, \"queries\": []}",
      "exactly one of");
  expect_parse_error(
      "{\"verb\": \"query\", \"machine\": \"e870\", \"queries\": []}",
      "must not be empty");
  expect_parse_error("{\"verb\": \"query\", \"machine\": \"\", "
                     "\"query\": {\"kind\": \"noc-latency\"}}",
                     "must not be empty");
  expect_parse_error("{\"verb\": \"query\", \"machine\": 7, "
                     "\"query\": {\"kind\": \"noc-latency\"}}",
                     "preset name");
  expect_parse_error("{\"verb\": \"ping\", \"id\": -3}",
                     "non-negative integer");
  expect_parse_error("{\"verb\": \"ping\", \"id\": 1.25}",
                     "non-negative integer");
}

TEST(ServeProtocolTest, OversizedBatchRejected) {
  std::string line =
      "{\"verb\": \"query\", \"machine\": \"e870\", \"queries\": [";
  for (int i = 0; i < 4097; ++i) {
    if (i != 0) line += ",";
    line += "{\"kind\": \"noc-latency\"}";
  }
  line += "]}";
  expect_parse_error(line, "4096");
}

TEST(ServeProtocolTest, BestEffortIdSurvivesSchemaErrors) {
  EXPECT_FALSE(serve::request_id_best_effort("not json").has_value());
  EXPECT_FALSE(serve::request_id_best_effort("{\"id\": -1}").has_value());
  const auto id =
      serve::request_id_best_effort("{\"id\": 41, \"bogus\": true}");
  ASSERT_TRUE(id.has_value());
  EXPECT_EQ(*id, 41u);
}

// ---- protocol: canonical form and validation ------------------------------

TEST(ServeProtocolTest, CanonicalQueryJsonIsFixedBytes) {
  const predict::Query q;  // all defaults
  EXPECT_EQ(serve::query_canonical_json(q),
            "{\"kind\":\"chase-latency\",\"footprint_bytes\":1048576,"
            "\"page_bytes\":65536,\"dscr\":1,\"pattern\":\"random\","
            "\"stride_lines\":1,\"consumer_chip\":0,\"home_chip\":0,"
            "\"read\":2,\"write\":1,\"chips\":1,\"cores\":1,\"threads\":1,"
            "\"streams\":1}");
}

TEST(ServeProtocolTest, CanonicalQueryJsonReparsesToItself) {
  P8_PROP(gen, 50, 0x5e12e) {
    predict::Query q;
    q.kind = gen.pick({predict::Query::Kind::kChaseLatency,
                       predict::Query::Kind::kStreamLatency,
                       predict::Query::Kind::kStreamBandwidth,
                       predict::Query::Kind::kRandomBandwidth,
                       predict::Query::Kind::kNocLatency});
    q.footprint_bytes = gen.range(1, 1u << 30);
    q.page_bytes = 1ull << gen.range(6, 24);
    q.dscr = gen.int_range(0, 7);
    q.pattern = gen.pick({ubench::ChasePattern::kRandom,
                          ubench::ChasePattern::kForwardStride,
                          ubench::ChasePattern::kBackwardStride});
    q.stride_lines = gen.range(1, 1u << 12);
    q.consumer_chip = gen.int_range(0, 15);
    q.home_chip = gen.int_range(0, 15);
    q.mix = sim::RwMix{gen.real_range(0.0, 4.0), gen.real_range(0.1, 4.0)};
    q.chips = gen.int_range(1, 16);
    q.cores = gen.int_range(1, 12);
    q.threads = gen.int_range(1, 8);
    q.streams = gen.int_range(1, 64);
    const std::string canonical = serve::query_canonical_json(q);
    const serve::Request r = serve::parse_request(
        "{\"verb\": \"query\", \"machine\": \"e870\", \"query\": " +
        canonical + "}");
    ASSERT_EQ(r.queries.size(), 1u);
    EXPECT_EQ(serve::query_canonical_json(r.queries[0]), canonical);
  }
}

TEST(ServeProtocolTest, ValidateQueryEnforcesMachineRanges) {
  const sim::MachineSpec spec = sim::machine_spec("e870");  // 8 chips
  predict::Query chase = chase_query(1 << 20);
  EXPECT_EQ(serve::validate_query(chase, spec), "");
  chase.consumer_chip = 8;
  EXPECT_NE(serve::validate_query(chase, spec).find("consumer_chip"),
            std::string::npos);
  chase.consumer_chip = 0;
  chase.home_chip = 100;
  EXPECT_NE(serve::validate_query(chase, spec).find("home_chip"),
            std::string::npos);
  chase.home_chip = 0;
  chase.dscr = 0;
  EXPECT_NE(serve::validate_query(chase, spec).find("dscr"),
            std::string::npos);

  predict::Query bw;
  bw.kind = predict::Query::Kind::kStreamBandwidth;
  bw.chips = 9;
  EXPECT_NE(serve::validate_query(bw, spec).find("chips"),
            std::string::npos);
  bw.chips = 8;
  bw.cores = 99;
  EXPECT_NE(serve::validate_query(bw, spec).find("cores"),
            std::string::npos);
  bw.cores = 1;
  bw.threads = 9;
  EXPECT_NE(serve::validate_query(bw, spec).find("threads"),
            std::string::npos);
  bw.threads = 8;
  EXPECT_EQ(serve::validate_query(bw, spec), "");
}

// ---- protocol: response rendering -----------------------------------------

TEST(ServeProtocolTest, ResponsesRenderStableShapes) {
  EXPECT_EQ(serve::ping_response(std::nullopt),
            "{\"ok\": true, \"pong\": true}\n");
  EXPECT_EQ(serve::ping_response(7),
            "{\"id\": 7, \"ok\": true, \"pong\": true}\n");
  EXPECT_EQ(serve::shutdown_response(std::nullopt),
            "{\"ok\": true, \"stopping\": true}\n");
  EXPECT_EQ(serve::error_response(3, "bad \"thing\"\n"),
            "{\"id\": 3, \"ok\": false, \"error\": "
            "\"bad \\\"thing\\\"\\n\"}\n");
  EXPECT_EQ(serve::query_response(
                std::nullopt, {serve::AnswerWire{1.5, true, false}}, false),
            "{\"ok\": true, \"value\": 1.5, \"analytic\": true, "
            "\"cached\": false}\n");
  EXPECT_EQ(serve::query_response(9,
                                  {serve::AnswerWire{1.5, true, false},
                                   serve::AnswerWire{2.0, false, true}},
                                  true),
            "{\"id\": 9, \"ok\": true, \"values\": [1.5, 2], "
            "\"analytic\": [true, false], \"cached\": [false, true]}\n");
  EXPECT_EQ(serve::stats_response(std::nullopt, {{"serve.requests", 4}}),
            "{\"ok\": true, \"stats\": {\"serve.requests\": 4}}\n");
}

// ---- content addressing ---------------------------------------------------

TEST(ServeCacheTest, Fnv1a64MatchesReferenceVectors) {
  EXPECT_EQ(serve::fnv1a64(""), 14695981039346656037ull);
  EXPECT_EQ(serve::fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(serve::fnv1a64("foobar"), 0x85944171f73967e8ull);
}

TEST(ServeCacheTest, KeyIsMachinePlusQueryBytes) {
  EXPECT_EQ(serve::cache_key("m", "q"), "m\nq");
  EXPECT_EQ(serve::cache_key_hash("m", "q"), serve::fnv1a64("m\nq"));
  // The separator keeps (machine, query) splits distinct.
  EXPECT_NE(serve::cache_key("ab", "c"), serve::cache_key("a", "bc"));
}

// ---- result cache ---------------------------------------------------------

TEST(ServeCacheTest, MissComputesThenHitsAreMemoized) {
  serve::ResultCache cache(4);
  int runs = 0;
  const auto compute = [&] {
    ++runs;
    return 2.5;
  };
  const auto first = cache.get_or_compute("m", "q", compute);
  EXPECT_EQ(first.value, 2.5);
  EXPECT_FALSE(first.cached);
  const auto second = cache.get_or_compute("m", "q", compute);
  EXPECT_EQ(second.value, 2.5);
  EXPECT_TRUE(second.cached);
  EXPECT_EQ(runs, 1);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.evictions, 0u);
}

std::vector<std::string> touch_sequence(serve::ResultCache& cache,
                                        const std::vector<int>& sequence) {
  for (const int k : sequence) {
    // Built with += — GCC 12's -Wrestrict false-positives on the
    // string operator+ overloads here.
    std::string query = "q";
    query += std::to_string(k);
    cache.get_or_compute("m", query, [k] { return static_cast<double>(k); });
  }
  return cache.keys_mru_order();
}

TEST(ServeCacheTest, LruContractAtCapacityOne) {
  serve::ResultCache cache(1);
  EXPECT_EQ(touch_sequence(cache, {0, 1, 2}),
            std::vector<std::string>{serve::cache_key("m", "q2")});
  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 3u);
  EXPECT_EQ(stats.evictions, 2u);
  EXPECT_EQ(stats.hits, 0u);
  // Re-touching the resident key is a hit even at capacity 1.
  cache.get_or_compute("m", "q2", [] { return 2.0; });
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(ServeCacheTest, LruContractAtCapacityTwo) {
  serve::ResultCache cache(2);
  // 0, 1, touch 0 again (hit, moves to MRU), then 2 evicts 1, not 0.
  const auto keys = touch_sequence(cache, {0, 1, 0, 2});
  EXPECT_EQ(keys, (std::vector<std::string>{serve::cache_key("m", "q2"),
                                            serve::cache_key("m", "q0")}));
  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 3u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.evictions, 1u);
}

TEST(ServeCacheTest, LruThrashesAtNonDivisorCapacity) {
  // 5 keys round-robin through a 3-entry cache: strict LRU never
  // hits, and the eviction count is exact.
  serve::ResultCache cache(3);
  const auto keys = touch_sequence(cache, {0, 1, 2, 3, 4, 0, 1, 2, 3, 4});
  EXPECT_EQ(keys, (std::vector<std::string>{serve::cache_key("m", "q4"),
                                            serve::cache_key("m", "q3"),
                                            serve::cache_key("m", "q2")}));
  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 10u);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.evictions, 7u);
}

TEST(ServeCacheTest, SingleFlightConcurrentDuplicatesCountAsHits) {
  serve::ResultCache cache(4);
  std::atomic<int> runs{0};
  std::atomic<bool> computing{false};
  const auto slow_compute = [&] {
    computing.store(true);
    runs.fetch_add(1);
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    return 7.0;
  };
  std::thread first([&] {
    const auto outcome = cache.get_or_compute("m", "q", slow_compute);
    EXPECT_FALSE(outcome.cached);
    EXPECT_EQ(outcome.value, 7.0);
  });
  while (!computing.load()) std::this_thread::sleep_for(
      std::chrono::milliseconds(1));
  std::vector<std::thread> waiters;
  for (int i = 0; i < 3; ++i)
    waiters.emplace_back([&] {
      const auto outcome = cache.get_or_compute("m", "q", slow_compute);
      EXPECT_TRUE(outcome.cached);
      EXPECT_EQ(outcome.value, 7.0);
    });
  first.join();
  for (auto& t : waiters) t.join();
  EXPECT_EQ(runs.load(), 1);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 3u);
}

TEST(ServeCacheTest, FailedComputeIsRetriedNotCached) {
  serve::ResultCache cache(4);
  int calls = 0;
  const auto flaky = [&] {
    if (++calls == 1) throw std::runtime_error("transient");
    return 1.0;
  };
  EXPECT_THROW(cache.get_or_compute("m", "q", flaky), std::runtime_error);
  EXPECT_EQ(cache.size(), 0u);
  const auto outcome = cache.get_or_compute("m", "q", flaky);
  EXPECT_FALSE(outcome.cached);
  EXPECT_EQ(outcome.value, 1.0);
  EXPECT_EQ(calls, 2);
}

TEST(ServeCacheTest, DebugSkewPerturbsStoredValueOnly) {
  serve::ResultCache cache(4);
  cache.set_debug_value_skew(0.5);
  const auto miss = cache.get_or_compute("m", "q", [] { return 2.0; });
  EXPECT_EQ(miss.value, 2.0);  // the computing caller sees the truth
  const auto hit = cache.get_or_compute("m", "q", [] { return 2.0; });
  EXPECT_TRUE(hit.cached);
  EXPECT_EQ(hit.value, 2.5);  // the memoized copy is skewed
}

// ---- server dispatch (no socket) ------------------------------------------

TEST(ServeServerTest, AdminVerbsRoundTrip) {
  serve::Server server(daemon_options());
  EXPECT_EQ(server.handle_line("{\"verb\": \"ping\", \"id\": 1}"),
            "{\"id\": 1, \"ok\": true, \"pong\": true}\n");
  const std::string stats = server.handle_line("{\"verb\": \"stats\"}");
  EXPECT_TRUE(response_ok(stats)) << stats;
  for (const char* name :
       {"serve.requests", "serve.queries", "serve.analytic", "serve.sim",
        "serve.cache_hits", "serve.cache_misses", "serve.cache_evictions",
        "serve.errors", "serve.connections", "serve.machines_loaded",
        "serve.machines_evicted", "serve.latency.le_100us",
        "serve.latency.le_1ms", "serve.latency.le_10ms",
        "serve.latency.le_100ms", "serve.latency.le_1s",
        "serve.latency.gt_1s"})
    EXPECT_NO_FATAL_FAILURE(stat_of(stats, name)) << name;
  EXPECT_FALSE(server.stop_requested());
  EXPECT_EQ(server.handle_line("{\"verb\": \"shutdown\"}"),
            "{\"ok\": true, \"stopping\": true}\n");
  EXPECT_TRUE(server.stop_requested());
}

TEST(ServeServerTest, HostileLinesGetSchemaCheckedErrors) {
  serve::Server server(daemon_options());
  for (const char* line : {
           "garbage",
           "{",
           "\x01\x02\x03",
           "[1]",
           "{\"verb\": \"query\"}",
           "{\"verb\": \"query\", \"machine\": \"no-such-machine\", "
           "\"query\": {\"kind\": \"noc-latency\"}}",
           "{\"verb\": \"query\", \"machine\": \"e870\", "
           "\"query\": {\"kind\": \"noc-latency\", \"home_chip\": 3000}}",
           "{\"verb\": \"query\", \"machine\": {\"bogus_member\": 1}, "
           "\"query\": {\"kind\": \"noc-latency\"}}",
       })
    check_error_schema(server.handle_line(line));
  // The id still comes back on schema errors (best-effort extraction).
  check_error_schema(
      server.handle_line("{\"id\": 6, \"verb\": \"nope\"}"),
      /*expect_id=*/true);
  check_error_schema(
      server.handle_line("{\"verb\": \"query\", \"id\": 8, \"machine\": "
                         "\"e870\", \"query\": {\"kind\": "
                         "\"chase-latency\", \"consumer_chip\": 99}}"),
      /*expect_id=*/true);
  const std::string stats = server.handle_line("{\"verb\": \"stats\"}");
  EXPECT_EQ(stat_of(stats, "serve.errors"), 10u);
}

TEST(ServeServerTest, AnalyticAnswerIsBitIdenticalToPredictor) {
  serve::Server server(daemon_options());
  const std::string response = server.handle_line(
      "{\"verb\": \"query\", \"machine\": \"e870\", \"query\": "
      "{\"kind\": \"stream-bandwidth\", \"chips\": 2, \"cores\": 8, "
      "\"threads\": 8, \"read\": 2, \"write\": 1}}");
  ASSERT_TRUE(response_ok(response)) << response;
  const predict::Predictor predictor(sim::machine_spec("e870"));
  // The wire query carries the predict::Query defaults for everything
  // it omits — including dscr = 1 — so the direct call must match.
  const double direct =
      predictor.stream_gbs(2, 8, 8, sim::RwMix{2.0, 1.0}, /*dscr=*/1);
  EXPECT_EQ(response_value(response), direct);
  // Byte identity, not just double equality: the response embeds
  // exactly json_number(direct).
  EXPECT_NE(response.find("\"value\": " + common::json_number(direct)),
            std::string::npos)
      << response;
}

TEST(ServeServerTest, SimulatedAnswerIsBitIdenticalDirectAndCached) {
  serve::Server server(daemon_options());
  common::ThreadPool pool(1);
  predict::QueryRouter router(sim::machine_spec("e870"), pool);
  const predict::Query q = chase_query(128 * 1024);
  ASSERT_FALSE(router.analytic_servable(q));
  const double direct = router.answer(q).value;

  const std::string miss = server.handle_line(chase_line(128 * 1024));
  ASSERT_TRUE(response_ok(miss)) << miss;
  EXPECT_FALSE(response_cached(miss));
  EXPECT_EQ(response_value(miss), direct);
  EXPECT_NE(miss.find("\"value\": " + common::json_number(direct)),
            std::string::npos);

  const std::string hit = server.handle_line(chase_line(128 * 1024));
  EXPECT_TRUE(response_cached(hit));
  EXPECT_EQ(response_value(hit), direct);
  // Cached and fresh responses differ only in the cached flag.
  EXPECT_NE(hit.find("\"value\": " + common::json_number(direct)),
            std::string::npos);
}

TEST(ServeServerTest, InlineSpecSharesCacheWithItsPreset) {
  serve::Server server(daemon_options());
  const std::string miss = server.handle_line(chase_line(256 * 1024));
  ASSERT_TRUE(response_ok(miss));
  EXPECT_FALSE(response_cached(miss));
  // The same machine written out inline addresses the same entry.
  std::string compact =
      common::json_dump(common::Json::parse(
          sim::machine_spec("e870").to_json()));
  const std::string inline_line =
      "{\"verb\": \"query\", \"machine\": " + compact +
      ", \"query\": {\"kind\": \"chase-latency\", \"footprint_bytes\": " +
      std::to_string(256 * 1024) + ", \"dscr\": 2}}";
  const std::string hit = server.handle_line(inline_line);
  ASSERT_TRUE(response_ok(hit)) << hit;
  EXPECT_TRUE(response_cached(hit));
  EXPECT_EQ(response_value(hit), response_value(miss));
  const std::string stats = server.handle_line("{\"verb\": \"stats\"}");
  EXPECT_EQ(stat_of(stats, "serve.machines_loaded"), 1u);
}

TEST(ServeServerTest, BatchDedupesWithinTheRequest) {
  serve::Server server(daemon_options());
  const std::string response = server.handle_line(
      "{\"verb\": \"query\", \"machine\": \"e870\", \"queries\": ["
      "{\"kind\": \"noc-latency\", \"home_chip\": 4}, " +
      std::string("{\"kind\": \"chase-latency\", \"footprint_bytes\": "
                  "65536, \"dscr\": 2}, ") +
      "{\"kind\": \"chase-latency\", \"footprint_bytes\": 65536, "
      "\"dscr\": 2}]}");
  ASSERT_TRUE(response_ok(response)) << response;
  const common::Json doc = parse_response(response);
  const common::Json* values = doc.find("values");
  const common::Json* analytic = doc.find("analytic");
  const common::Json* cached = doc.find("cached");
  ASSERT_NE(values, nullptr);
  ASSERT_NE(analytic, nullptr);
  ASSERT_NE(cached, nullptr);
  ASSERT_EQ(values->array.size(), 3u);
  EXPECT_TRUE(analytic->array[0].boolean);
  EXPECT_FALSE(analytic->array[1].boolean);
  EXPECT_FALSE(analytic->array[2].boolean);
  // The duplicate pair: identical value, exactly one actually ran.
  EXPECT_EQ(values->array[1].number, values->array[2].number);
  EXPECT_NE(cached->array[1].boolean, cached->array[2].boolean);
  const std::string stats = server.handle_line("{\"verb\": \"stats\"}");
  EXPECT_EQ(stat_of(stats, "serve.sim"), 1u);
  EXPECT_EQ(stat_of(stats, "serve.cache_hits"), 1u);
  EXPECT_EQ(stat_of(stats, "serve.analytic"), 1u);
}

TEST(ServeServerTest, PerturbedCacheBreaksByteIdentity) {
  serve::ServerOptions options = daemon_options();
  options.debug_value_skew = 0.5;
  serve::Server server(options);
  const double fresh = response_value(
      server.handle_line(chase_line(64 * 1024)));
  const double cached = response_value(
      server.handle_line(chase_line(64 * 1024)));
  EXPECT_EQ(cached, fresh + 0.5);  // identity broken, by exactly the skew
}

// ---- daemon over the socket -----------------------------------------------

TEST(ServeDaemonTest, EndToEndQueryStatsShutdownCycle) {
  auto daemon = std::make_unique<Daemon>(daemon_options());
  const std::string path = daemon->path();
  ASSERT_TRUE(serve::wait_for_server(path, 5.0));

  serve::Client client(path);
  EXPECT_EQ(client.request("{\"verb\": \"ping\"}"),
            "{\"ok\": true, \"pong\": true}");
  const std::string miss = client.request(chase_line(96 * 1024));
  ASSERT_TRUE(response_ok(miss)) << miss;
  const std::string hit = client.request(chase_line(96 * 1024));
  EXPECT_TRUE(response_cached(hit));
  EXPECT_EQ(response_value(hit), response_value(miss));

  const std::string stats = client.request("{\"verb\": \"stats\"}");
  EXPECT_EQ(stat_of(stats, "serve.cache_hits"), 1u);
  EXPECT_EQ(stat_of(stats, "serve.sim"), 1u);

  EXPECT_EQ(client.request("{\"verb\": \"shutdown\"}"),
            "{\"ok\": true, \"stopping\": true}");
  daemon->server.wait();
  // Clean shutdown removes the socket file — nothing leaks.
  EXPECT_NE(::access(path.c_str(), F_OK), 0);
}

TEST(ServeDaemonTest, CachedFreshDaemonAndDirectAnswersAgreeByteForByte) {
  // The acceptance contract: for a simulation-required query, the
  // first daemon answer (fresh), the memoized answer, a *new*
  // daemon's answer, and a direct QueryRouter run are all the same
  // bytes.
  const predict::Query q = chase_query(192 * 1024);
  common::ThreadPool pool(1);
  predict::QueryRouter router(sim::machine_spec("e870"), pool);
  const std::string expected = common::json_number(router.answer(q).value);

  std::vector<std::string> responses;
  for (int round = 0; round < 2; ++round) {
    Daemon daemon(daemon_options());
    ASSERT_TRUE(serve::wait_for_server(daemon.path(), 5.0));
    serve::Client client(daemon.path());
    responses.push_back(client.request(chase_line(192 * 1024)));
    responses.push_back(client.request(chase_line(192 * 1024)));
  }
  for (const std::string& response : responses)
    EXPECT_NE(response.find("\"value\": " + expected), std::string::npos)
        << response << " vs expected value " << expected;
}

TEST(ServeDaemonTest, CacheChurnEvictionsAreExact) {
  serve::ServerOptions options = daemon_options();
  options.cache_capacity = 2;
  Daemon daemon(options);
  ASSERT_TRUE(serve::wait_for_server(daemon.path(), 5.0));
  serve::Client client(daemon.path());
  // Three distinct entries round-robin through a 2-entry cache,
  // twice: strict LRU never hits and evicts exactly 4 times.
  const std::uint64_t footprints[] = {64 * 1024, 96 * 1024, 128 * 1024};
  for (int round = 0; round < 2; ++round)
    for (const std::uint64_t footprint : footprints) {
      const std::string response = client.request(chase_line(footprint));
      ASSERT_TRUE(response_ok(response)) << response;
      EXPECT_FALSE(response_cached(response));
    }
  const std::string stats = client.request("{\"verb\": \"stats\"}");
  EXPECT_EQ(stat_of(stats, "serve.cache_hits"), 0u);
  EXPECT_EQ(stat_of(stats, "serve.cache_misses"), 6u);
  EXPECT_EQ(stat_of(stats, "serve.cache_evictions"), 4u);
  EXPECT_EQ(stat_of(stats, "serve.sim"), 6u);
}

TEST(ServeDaemonTest, StaleSocketFromCrashedDaemonIsReclaimed) {
  const std::string path = test_socket_path();
  // Simulate a crash: bind the path, then drop the fd without
  // unlinking — exactly what a SIGKILLed daemon leaves behind.
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int stale = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(stale, 0);
  ASSERT_EQ(::bind(stale, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof addr),
            0);
  ::close(stale);
  ASSERT_EQ(::access(path.c_str(), F_OK), 0);

  serve::ServerOptions options = daemon_options();
  options.socket_path = path;
  Daemon daemon(options);
  ASSERT_TRUE(serve::wait_for_server(path, 5.0));
  EXPECT_EQ(serve::request_once(path, "{\"verb\": \"ping\"}"),
            "{\"ok\": true, \"pong\": true}");
}

TEST(ServeDaemonTest, LiveDaemonAndForeignFilesAreRefused) {
  Daemon daemon(daemon_options());
  ASSERT_TRUE(serve::wait_for_server(daemon.path(), 5.0));
  serve::ServerOptions clash = daemon_options();
  clash.socket_path = daemon.path();
  serve::Server second(clash);
  EXPECT_THROW(second.start(), std::runtime_error);
  // The live daemon is unharmed by the refused takeover.
  EXPECT_EQ(serve::request_once(daemon.path(), "{\"verb\": \"ping\"}"),
            "{\"ok\": true, \"pong\": true}");

  // A regular file at the path is not ours to delete.
  const std::string file_path = test_socket_path();
  {
    std::FILE* f = std::fopen(file_path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("precious data\n", f);
    std::fclose(f);
  }
  serve::ServerOptions on_file = daemon_options();
  on_file.socket_path = file_path;
  serve::Server third(on_file);
  EXPECT_THROW(third.start(), std::runtime_error);
  EXPECT_EQ(::access(file_path.c_str(), F_OK), 0);  // still there
  ::unlink(file_path.c_str());
}

TEST(ServeDaemonTest, OversizedFrameRejectedWithoutKillingTheDaemon) {
  serve::ServerOptions options = daemon_options();
  options.max_line_bytes = 256;
  Daemon daemon(options);
  ASSERT_TRUE(serve::wait_for_server(daemon.path(), 5.0));
  serve::Client client(daemon.path());
  const std::string big(5000, 'x');
  const std::string response = client.request(big);
  check_error_schema(response);
  EXPECT_NE(response.find("oversized frame"), std::string::npos);
  // That connection is closed...
  EXPECT_THROW(client.request("{\"verb\": \"ping\"}"),
               std::runtime_error);
  // ...but the daemon lives on.
  EXPECT_EQ(serve::request_once(daemon.path(), "{\"verb\": \"ping\"}"),
            "{\"ok\": true, \"pong\": true}");
}

TEST(ServeDaemonTest, TruncatedFrameRejectedWithoutKillingTheDaemon) {
  Daemon daemon(daemon_options());
  ASSERT_TRUE(serve::wait_for_server(daemon.path(), 5.0));
  const int fd = raw_connect(daemon.path());
  const char frame[] = "{\"verb\": \"ping\"";  // no newline, ever
  ASSERT_EQ(::send(fd, frame, sizeof frame - 1, 0),
            static_cast<ssize_t>(sizeof frame - 1));
  ASSERT_EQ(::shutdown(fd, SHUT_WR), 0);
  const std::string response = raw_read_all(fd);
  ::close(fd);
  ASSERT_FALSE(response.empty());
  check_error_schema(response.substr(0, response.size() - 1));
  EXPECT_NE(response.find("truncated frame"), std::string::npos);
  EXPECT_EQ(serve::request_once(daemon.path(), "{\"verb\": \"ping\"}"),
            "{\"ok\": true, \"pong\": true}");
}

TEST(ServeDaemonTest, GarbageBytesKeepTheConnectionServing) {
  Daemon daemon(daemon_options());
  ASSERT_TRUE(serve::wait_for_server(daemon.path(), 5.0));
  serve::Client client(daemon.path());
  const std::string garbage = "\x01\x7f)(*&^%$";
  check_error_schema(client.request(garbage));
  // Same connection, next line: business as usual.
  EXPECT_EQ(client.request("{\"verb\": \"ping\"}"),
            "{\"ok\": true, \"pong\": true}");
}

// ---- concurrent clients vs serial replay ----------------------------------

struct StreamStats {
  std::map<std::string, std::pair<double, bool>> answers;  // line -> (v, a)
  std::uint64_t cache_hits = 0;
  std::uint64_t sim = 0;
  std::uint64_t analytic = 0;
};

/// Replays `lines` against a fresh daemon with `clients` concurrent
/// connections (round-robin sharding) and returns every answer plus
/// the daemon's own accounting.
StreamStats replay_stream(const std::vector<std::string>& lines,
                          int clients) {
  serve::ServerOptions options = daemon_options();
  options.cache_capacity = 1024;  // no eviction: hits == duplicates
  Daemon daemon(options);
  EXPECT_TRUE(serve::wait_for_server(daemon.path(), 5.0));

  std::vector<std::map<std::string, std::pair<double, bool>>> shards(
      static_cast<std::size_t>(clients));
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c)
    threads.emplace_back([&, c] {
      serve::Client client(daemon.path());
      for (std::size_t i = static_cast<std::size_t>(c); i < lines.size();
           i += static_cast<std::size_t>(clients)) {
        const std::string response = client.request(lines[i]);
        ASSERT_TRUE(response_ok(response))
            << lines[i] << " -> " << response;
        const common::Json doc = parse_response(response);
        shards[static_cast<std::size_t>(c)][lines[i]] = {
            doc.find("value")->number, doc.find("analytic")->boolean};
      }
    });
  for (auto& t : threads) t.join();

  StreamStats out;
  for (const auto& shard : shards)
    for (const auto& [line, answer] : shard) {
      const auto it = out.answers.find(line);
      if (it == out.answers.end()) {
        out.answers.emplace(line, answer);
      } else {
        // The same line answered identically on every connection.
        EXPECT_EQ(it->second.first, answer.first) << line;
        EXPECT_EQ(it->second.second, answer.second) << line;
      }
    }
  const std::string stats =
      serve::request_once(daemon.path(), "{\"verb\": \"stats\"}");
  out.cache_hits = stat_of(stats, "serve.cache_hits");
  out.sim = stat_of(stats, "serve.sim");
  out.analytic = stat_of(stats, "serve.analytic");
  return out;
}

TEST(ServeConcurrentTest, ClientsAreBitIdenticalToSerialReplay) {
  P8_PROP(gen, 3, 0x5eede) {
    // A seeded stream mixing always-analytic and always-simulated
    // queries, with duplicates by construction (footprints drawn
    // from a 4-value pool).
    std::vector<std::string> lines;
    std::size_t sim_occurrences = 0;
    std::set<std::string> unique_sim;
    for (int i = 0; i < 24; ++i) {
      if (gen.chance(0.4)) {
        lines.push_back(
            "{\"verb\": \"query\", \"machine\": \"e870\", \"query\": "
            "{\"kind\": \"noc-latency\", \"home_chip\": " +
            std::to_string(gen.int_range(0, 7)) + "}}");
      } else {
        const std::uint64_t footprint =
            static_cast<std::uint64_t>(
                gen.pick({64, 96, 128, 192})) * 1024;
        lines.push_back(chase_line(footprint));
        ++sim_occurrences;
        unique_sim.insert(lines.back());
      }
    }
    const std::uint64_t duplicates = sim_occurrences - unique_sim.size();

    const StreamStats serial = replay_stream(lines, 1);
    EXPECT_EQ(serial.cache_hits, duplicates);
    EXPECT_EQ(serial.sim, unique_sim.size());
    EXPECT_EQ(serial.analytic, lines.size() - sim_occurrences);

    for (const int clients : {2, 4, 8}) {
      const StreamStats concurrent = replay_stream(lines, clients);
      // Bit-identical answers, query by query...
      ASSERT_EQ(concurrent.answers.size(), serial.answers.size());
      for (const auto& [line, answer] : serial.answers) {
        const auto it = concurrent.answers.find(line);
        ASSERT_NE(it, concurrent.answers.end()) << line;
        EXPECT_EQ(it->second.first, answer.first)
            << clients << " clients diverged on " << line;
        EXPECT_EQ(it->second.second, answer.second) << line;
      }
      // ...and exact accounting: single-flight makes every duplicate
      // a cache hit no matter how the stream is sharded.
      EXPECT_EQ(concurrent.cache_hits, duplicates) << clients;
      EXPECT_EQ(concurrent.sim, unique_sim.size()) << clients;
      EXPECT_EQ(concurrent.analytic, lines.size() - sim_occurrences)
          << clients;
    }
  }
}

TEST(ServeConcurrentTest, MixedVerbBurstLeavesTheDaemonHealthy) {
  Daemon daemon(daemon_options());
  ASSERT_TRUE(serve::wait_for_server(daemon.path(), 5.0));
  std::vector<std::thread> threads;
  for (int c = 0; c < 6; ++c)
    threads.emplace_back([&, c] {
      serve::Client client(daemon.path());
      for (int i = 0; i < 10; ++i) {
        switch ((c + i) % 4) {
          case 0:
            EXPECT_EQ(client.request("{\"verb\": \"ping\"}"),
                      "{\"ok\": true, \"pong\": true}");
            break;
          case 1:
            EXPECT_TRUE(response_ok(
                client.request("{\"verb\": \"stats\"}")));
            break;
          case 2:
            EXPECT_TRUE(response_ok(client.request(
                chase_line(static_cast<std::uint64_t>(64 + 32 * (i % 3)) *
                           1024))));
            break;
          default:
            check_error_schema(client.request("{\"broken\":"));
        }
      }
    });
  for (auto& t : threads) t.join();
  const std::string stats =
      serve::request_once(daemon.path(), "{\"verb\": \"stats\"}");
  EXPECT_EQ(stat_of(stats, "serve.requests"), 61u);  // 60 + this stats
  // (c + i) % 4 == 3 has 14 solutions over c in [0,6) x i in [0,10).
  EXPECT_EQ(stat_of(stats, "serve.errors"), 14u);
}

}  // namespace
}  // namespace p8
