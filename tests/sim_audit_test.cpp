// ModelAudit: the checked-in E870 configuration must pass every rule,
// and each misconfiguration class the audit claims to reject must
// actually be rejected — one test per class, asserting on the stable
// rule id so a renamed rule breaks loudly.  Also pins the report
// mechanics: severity split, ok() semantics (warnings never gate),
// merge, and the machine-level gate wiring through Machine::audit().
#include <gtest/gtest.h>

#include <string>

#include "arch/spec.hpp"
#include "sim/audit.hpp"
#include "sim/machine/machine.hpp"

namespace p8::sim {
namespace {

HierarchyConfig e870_hierarchy() {
  return HierarchyConfig::from_spec(arch::e870());
}

ProbeConfig e870_probe() {
  ProbeConfig c;
  c.hierarchy = e870_hierarchy();
  c.prefetch.line_bytes = arch::e870().processor.cache_line_bytes;
  return c;
}

// ------------------------------------------------------- clean configs ----

TEST(ModelAudit, E870MachinePassesEveryRule) {
  const AuditReport report =
      ModelAudit::machine(arch::e870(), MemBandwidthParams{}, NocParams{});
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_TRUE(report.diagnostics.empty()) << report.to_string();
}

TEST(ModelAudit, MachineStoresItsAuditReport) {
  const Machine machine = Machine(arch::e870());
  EXPECT_TRUE(machine.audit().ok()) << machine.audit().to_string();
}

TEST(ModelAudit, VictimPoolIrregularSetCountIsLegitimate) {
  // 7 x 8 MB / 16-way / 128 B = 28672 sets — not a power of two, and
  // correct: the pow2 rule applies only to the demand-indexed levels.
  const AuditReport report = ModelAudit::hierarchy(e870_hierarchy());
  EXPECT_FALSE(report.has("hierarchy.set-power-of-two"))
      << report.to_string();
}

// --------------------------------------- rejected misconfig class 1..N ----

TEST(ModelAudit, RejectsInvertedCacheLatencies) {
  HierarchyConfig c = e870_hierarchy();
  std::swap(c.latency.l2_ns, c.latency.l3_local_ns);
  const AuditReport report = ModelAudit::hierarchy(c);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has("hierarchy.latency-order")) << report.to_string();
}

TEST(ModelAudit, RejectsNonPowerOfTwoDemandSets) {
  HierarchyConfig c = e870_hierarchy();
  c.l1_bytes = 96 * 1024;  // 96 sets at 8 ways x 128 B
  const AuditReport report = ModelAudit::hierarchy(c);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has("hierarchy.set-power-of-two")) << report.to_string();
}

TEST(ModelAudit, RejectsShrinkingCapacityOrder) {
  HierarchyConfig c = e870_hierarchy();
  c.l2_bytes = c.l3_bytes * 2;
  const AuditReport report = ModelAudit::hierarchy(c);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has("hierarchy.capacity-order")) << report.to_string();
}

TEST(ModelAudit, RejectsUntileableGeometry) {
  HierarchyConfig c = e870_hierarchy();
  c.l1_bytes = 64 * 1024 + 128;  // not a whole number of sets
  const AuditReport report = ModelAudit::hierarchy(c);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has("hierarchy.geometry")) << report.to_string();
}

TEST(ModelAudit, RejectsEratOutreachingTlb) {
  TlbConfig c;
  c.erat_entries = 4096;  // reaches past the 2048-entry TLB behind it
  const AuditReport report = ModelAudit::tlb(c);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has("tlb.reach-order")) << report.to_string();
}

TEST(ModelAudit, RejectsInvertedTlbPenalties) {
  TlbConfig c;
  c.erat_miss_ns = 50.0;  // dearer than the 42 ns full walk
  const AuditReport report = ModelAudit::tlb(c);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has("tlb.penalty-order")) << report.to_string();
}

TEST(ModelAudit, RejectsRaggedTlbSets) {
  TlbConfig c;
  c.tlb_entries = 2049;  // not divisible into 4-way sets
  const AuditReport report = ModelAudit::tlb(c);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has("tlb.geometry")) << report.to_string();
}

TEST(ModelAudit, RejectsOutOfRangeDscr) {
  PrefetchConfig c;
  c.dscr = 9;
  const AuditReport report = ModelAudit::prefetch(c);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has("prefetch.dscr-range")) << report.to_string();
}

TEST(ModelAudit, RejectsBrokenCentaurLinkRatio) {
  arch::SystemSpec spec = arch::e870();
  spec.centaur.write_link_gbs = spec.centaur.read_link_gbs;  // 1:1
  const AuditReport report = ModelAudit::bandwidth(spec, MemBandwidthParams{});
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has("mem.link-ratio")) << report.to_string();
}

TEST(ModelAudit, RejectsEfficiencyAboveOne) {
  MemBandwidthParams p;
  p.read_link_eff = 1.2;  // a link cannot deliver more than its wire rate
  const AuditReport report = ModelAudit::bandwidth(arch::e870(), p);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has("mem.efficiency-range")) << report.to_string();
}

TEST(ModelAudit, RejectsRandomLatencyAboveStreamLatency) {
  MemBandwidthParams p;
  p.random_latency_ns = 200.0;  // unloaded cannot exceed loaded
  const AuditReport report = ModelAudit::bandwidth(arch::e870(), p);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has("mem.latency-order")) << report.to_string();
}

TEST(ModelAudit, RejectsSubUnityHopAmplification) {
  NocParams p;
  p.hop_amplification = 0.9;  // multi-hop cheaper than single-hop
  const AuditReport report = ModelAudit::noc(p);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has("noc.efficiency-range")) << report.to_string();
}

TEST(ModelAudit, RejectsImpossibleSmtWidth) {
  arch::SystemSpec spec = arch::e870();
  spec.processor.core.smt_threads = 3;
  const AuditReport report = ModelAudit::system(spec);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has("system.smt")) << report.to_string();
}

TEST(ModelAudit, RejectsLineSizeDisagreement) {
  ProbeConfig c = e870_probe();
  c.prefetch.line_bytes = 64;  // hierarchy says 128
  const AuditReport report = ModelAudit::probe_config(c);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has("probe.line-bytes")) << report.to_string();
}

TEST(ModelAudit, RejectsNegativeProbeTime) {
  ProbeConfig c = e870_probe();
  c.remote_extra_ns = -1.0;
  const AuditReport report = ModelAudit::probe_config(c);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has("probe.negative-time")) << report.to_string();
}

// ------------------------------------------------ severities & report ----

TEST(ModelAudit, WarningsReportButDoNotGate) {
  arch::SystemSpec spec = arch::e870();
  spec.clock_ghz = 10.0;  // implausible but simulable
  const AuditReport report = ModelAudit::system(spec);
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_TRUE(report.has("system.clock"));
  EXPECT_EQ(report.error_count(), 0u);
  EXPECT_EQ(report.warning_count(), 1u);
}

TEST(ModelAudit, SlowPageWalkIsAWarning) {
  ProbeConfig c = e870_probe();
  c.tlb.walk_ns = 200.0;  // slower than DRAM: suspicious, not fatal
  const AuditReport report = ModelAudit::probe_config(c);
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_TRUE(report.has("probe.walk-vs-dram"));
}

TEST(ModelAudit, ReportAggregatesEveryViolationAtOnce) {
  HierarchyConfig c = e870_hierarchy();
  std::swap(c.latency.l2_ns, c.latency.l3_local_ns);
  c.l1_bytes = 96 * 1024;
  const AuditReport report = ModelAudit::hierarchy(c);
  // Both problems surface in one pass — the audit never throws on the
  // first hit, so the user sees the full damage list.
  EXPECT_TRUE(report.has("hierarchy.latency-order"));
  EXPECT_TRUE(report.has("hierarchy.set-power-of-two"));
  EXPECT_GE(report.error_count(), 2u);
}

TEST(ModelAudit, MergeConcatenatesDiagnostics) {
  AuditReport a, b;
  a.add(AuditSeverity::kError, "x.one", "first");
  b.add(AuditSeverity::kWarning, "x.two", "second");
  a.merge(b);
  EXPECT_EQ(a.diagnostics.size(), 2u);
  EXPECT_TRUE(a.has("x.one"));
  EXPECT_TRUE(a.has("x.two"));
  EXPECT_EQ(a.error_count(), 1u);
  EXPECT_EQ(a.warning_count(), 1u);
}

TEST(ModelAudit, ToStringNamesRuleAndSeverity) {
  AuditReport r;
  r.add(AuditSeverity::kError, "hierarchy.latency-order", "inverted");
  const std::string s = r.to_string();
  EXPECT_NE(s.find("error"), std::string::npos);
  EXPECT_NE(s.find("[hierarchy.latency-order]"), std::string::npos);
  EXPECT_NE(s.find("inverted"), std::string::npos);
}

}  // namespace
}  // namespace p8::sim
