// Tests for the cache, TLB and hierarchy simulators.
#include <gtest/gtest.h>

#include <set>

#include "arch/spec.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "sim/cache/cache.hpp"
#include "sim/cache/hierarchy.hpp"
#include "sim/cache/tlb.hpp"

namespace p8::sim {
namespace {

using common::kib;
using common::mib;

// -------------------------------------------------------- SetAssocCache ----

TEST(Cache, MissThenHit) {
  SetAssocCache c(kib(1), 2, 64);
  EXPECT_FALSE(c.access(0).hit);
  EXPECT_TRUE(c.access(0).hit);
  EXPECT_TRUE(c.access(63).hit);   // same line
  EXPECT_FALSE(c.access(64).hit);  // next line
}

TEST(Cache, LruEvictsOldest) {
  // 2-way, one set of interest: lines mapping to set 0 are multiples
  // of sets*line.
  SetAssocCache c(kib(1), 2, 64);  // 8 sets
  const std::uint64_t stride = 8 * 64;
  c.access(0 * stride);
  c.access(1 * stride);
  c.access(0 * stride);            // 0 is now MRU
  const auto r = c.access(2 * stride);
  EXPECT_FALSE(r.hit);
  ASSERT_TRUE(r.evicted.has_value());
  EXPECT_EQ(*r.evicted, 1 * stride);  // LRU way went
  EXPECT_TRUE(c.probe(0 * stride));
  EXPECT_FALSE(c.probe(1 * stride));
}

TEST(Cache, ProbeDoesNotTouch) {
  SetAssocCache c(kib(1), 2, 64);
  const std::uint64_t stride = 8 * 64;
  c.access(0 * stride);
  c.access(1 * stride);
  // Probing 0 must NOT refresh it...
  EXPECT_TRUE(c.probe(0 * stride));
  c.access(2 * stride);  // ...so 0 (older) is evicted.
  EXPECT_FALSE(c.probe(0 * stride));
  EXPECT_TRUE(c.probe(1 * stride));
}

TEST(Cache, InstallReturnsEviction) {
  SetAssocCache c(128, 1, 64);  // 2 sets, direct mapped
  EXPECT_EQ(c.install(0), std::nullopt);
  const auto ev = c.install(128);  // same set as 0
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(*ev, 0u);
}

TEST(Cache, InstallExistingRefreshes) {
  SetAssocCache c(kib(1), 2, 64);
  const std::uint64_t stride = 8 * 64;
  c.install(0 * stride);
  c.install(1 * stride);
  c.install(0 * stride);  // refresh, no eviction
  const auto ev = c.install(2 * stride);
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(*ev, 1 * stride);
}

TEST(Cache, InvalidateRemoves) {
  SetAssocCache c(kib(1), 2, 64);
  c.access(0);
  EXPECT_TRUE(c.invalidate(0));
  EXPECT_FALSE(c.probe(0));
  EXPECT_FALSE(c.invalidate(0));
}

TEST(Cache, ResidentLinesAndClear) {
  SetAssocCache c(kib(1), 2, 64);
  for (int i = 0; i < 5; ++i) c.access(static_cast<std::uint64_t>(i) * 64);
  EXPECT_EQ(c.resident_lines(), 5u);
  c.clear();
  EXPECT_EQ(c.resident_lines(), 0u);
}

TEST(Cache, CapacityGeometryValidation) {
  EXPECT_THROW(SetAssocCache(100, 2, 64), std::invalid_argument);
  EXPECT_THROW(SetAssocCache(kib(1), 2, 60), std::invalid_argument);
  EXPECT_THROW(SetAssocCache(kib(1), 0, 64), std::invalid_argument);
}

class CacheGeometry
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, unsigned>> {};

TEST_P(CacheGeometry, WorkingSetWithinCapacityAlwaysHitsAfterWarm) {
  const auto [capacity, ways] = GetParam();
  SetAssocCache c(capacity, ways, 128);
  const std::uint64_t lines = capacity / 128;
  // Sequential fill: maps evenly across sets, fits exactly.
  for (std::uint64_t i = 0; i < lines; ++i) c.access(i * 128);
  for (std::uint64_t i = 0; i < lines; ++i)
    EXPECT_TRUE(c.access(i * 128).hit) << "line " << i;
}

TEST_P(CacheGeometry, WorkingSetTwiceCapacityAlwaysMissesCyclically) {
  const auto [capacity, ways] = GetParam();
  SetAssocCache c(capacity, ways, 128);
  const std::uint64_t lines = 2 * capacity / 128;
  for (int pass = 0; pass < 2; ++pass)
    for (std::uint64_t i = 0; i < lines; ++i) {
      const bool hit = c.access(i * 128).hit;
      if (pass == 1) EXPECT_FALSE(hit) << "line " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometry,
    ::testing::Values(std::tuple{kib(64), 8u}, std::tuple{kib(512), 8u},
                      std::tuple{kib(64), 1u}, std::tuple{kib(64), 16u},
                      std::tuple{mib(8), 8u}));

// ------------------------------------------------------------------ TLB ----

TEST(Tlb, EratHitAfterFirstTouch) {
  Tlb tlb(TlbConfig{});
  EXPECT_NE(tlb.translate(0), TlbOutcome::kEratHit);
  EXPECT_EQ(tlb.translate(0), TlbOutcome::kEratHit);
  EXPECT_EQ(tlb.translate(63 * 1024), TlbOutcome::kEratHit);  // same page
}

TEST(Tlb, FirstTouchWalks) {
  Tlb tlb(TlbConfig{});
  EXPECT_EQ(tlb.translate(0), TlbOutcome::kWalk);
}

TEST(Tlb, EratReachIs3MB) {
  // 48 entries x 64 KB pages = 3 MB: a 47-page loop fits, a 64-page
  // loop thrashes the ERAT but still hits the TLB.
  TlbConfig cfg;
  Tlb tlb(cfg);
  const std::uint64_t page = cfg.page_bytes;
  for (int pass = 0; pass < 3; ++pass)
    for (std::uint64_t p = 0; p < 47; ++p) {
      const auto out = tlb.translate(p * page);
      if (pass > 0) EXPECT_EQ(out, TlbOutcome::kEratHit);
    }
  Tlb tlb2(cfg);
  int erat_hits = 0;
  for (int pass = 0; pass < 3; ++pass)
    for (std::uint64_t p = 0; p < 64; ++p) {
      const auto out = tlb2.translate(p * page);
      if (pass == 2) {
        EXPECT_NE(out, TlbOutcome::kWalk);
        erat_hits += out == TlbOutcome::kEratHit ? 1 : 0;
      }
    }
  EXPECT_EQ(erat_hits, 0);  // cyclic sweep over 64 pages defeats 48-LRU
}

TEST(Tlb, HugePagesExtendReach) {
  TlbConfig cfg;
  cfg.page_bytes = 16ull << 20;
  Tlb tlb(cfg);
  // 100 MB working set = 7 huge pages: trivially inside the ERAT.
  for (int pass = 0; pass < 2; ++pass)
    for (std::uint64_t p = 0; p < 7; ++p) {
      const auto out = tlb.translate(p * cfg.page_bytes);
      if (pass == 1) EXPECT_EQ(out, TlbOutcome::kEratHit);
    }
}

TEST(Tlb, PenaltiesOrdered) {
  Tlb tlb(TlbConfig{});
  EXPECT_EQ(tlb.penalty_ns(TlbOutcome::kEratHit), 0.0);
  EXPECT_GT(tlb.penalty_ns(TlbOutcome::kTlbHit), 0.0);
  EXPECT_GT(tlb.penalty_ns(TlbOutcome::kWalk),
            tlb.penalty_ns(TlbOutcome::kTlbHit));
}

// ------------------------------------------------------------- hierarchy ---

HierarchyConfig e870_hierarchy() {
  return HierarchyConfig::from_spec(arch::e870());
}

TEST(Hierarchy, FromSpecGeometry) {
  const auto c = e870_hierarchy();
  EXPECT_EQ(c.l1_bytes, kib(64));
  EXPECT_EQ(c.l2_bytes, kib(512));
  EXPECT_EQ(c.l3_bytes, mib(8));
  EXPECT_EQ(c.chip_cores, 8);
  EXPECT_EQ(c.centaurs, 8);
  EXPECT_EQ(c.line_bytes, 128u);
}

TEST(Hierarchy, FirstAccessComesFromDram) {
  ChipMemoryModel m(e870_hierarchy());
  EXPECT_EQ(m.access(0), ServiceLevel::kDram);
}

TEST(Hierarchy, SecondAccessHitsL1) {
  ChipMemoryModel m(e870_hierarchy());
  m.access(0);
  EXPECT_EQ(m.access(0), ServiceLevel::kL1);
}

TEST(Hierarchy, L2HitAfterL1Eviction) {
  ChipMemoryModel m(e870_hierarchy());
  m.access(0);
  // Push 0 out of the 64 KB L1 by streaming 128 KB, staying inside L2.
  for (std::uint64_t a = 128; a <= kib(128); a += 128) m.access(a);
  EXPECT_EQ(m.access(0), ServiceLevel::kL2);
}

TEST(Hierarchy, L3HitAfterL2Eviction) {
  ChipMemoryModel m(e870_hierarchy());
  m.access(0);
  for (std::uint64_t a = 128; a <= mib(1); a += 128) m.access(a);
  EXPECT_EQ(m.access(0), ServiceLevel::kL3Local);
}

TEST(Hierarchy, VictimPoolCatchesL3Evictions) {
  ChipMemoryModel m(e870_hierarchy());
  m.access(0);
  // Stream 16 MB: evicts line 0 from the local 8 MB L3 into the
  // lateral victim pool (the other cores' 56 MB).
  for (std::uint64_t a = 128; a <= mib(16); a += 128) m.access(a);
  EXPECT_EQ(m.access(0), ServiceLevel::kL3Remote);
}

TEST(Hierarchy, VictimDisabledFallsToL4) {
  auto cfg = e870_hierarchy();
  cfg.victim_l3 = false;
  ChipMemoryModel m(cfg);
  m.access(0);
  for (std::uint64_t a = 128; a <= mib(16); a += 128) m.access(a);
  // Without lateral cast-out the line is gone from SRAM but the
  // memory-side L4 still holds it.
  EXPECT_EQ(m.access(0), ServiceLevel::kL4);
}

TEST(Hierarchy, L4DisabledFallsToDram) {
  auto cfg = e870_hierarchy();
  cfg.victim_l3 = false;
  cfg.l4_enabled = false;
  ChipMemoryModel m(cfg);
  m.access(0);
  for (std::uint64_t a = 128; a <= mib(16); a += 128) m.access(a);
  EXPECT_EQ(m.access(0), ServiceLevel::kDram);
}

TEST(Hierarchy, RemoteHitMigratesHome) {
  ChipMemoryModel m(e870_hierarchy());
  m.access(0);
  for (std::uint64_t a = 128; a <= mib(16); a += 128) m.access(a);
  ASSERT_EQ(m.access(0), ServiceLevel::kL3Remote);
  EXPECT_EQ(m.access(0), ServiceLevel::kL1);  // migrated back up
}

TEST(Hierarchy, PrefetchedInstallHitsL1) {
  ChipMemoryModel m(e870_hierarchy());
  m.install_prefetched(1024);
  EXPECT_EQ(m.access(1024), ServiceLevel::kL1);
}

TEST(Hierarchy, LatenciesAreMonotone) {
  const HierarchyLatencies lat;
  EXPECT_LT(lat.of(ServiceLevel::kL1), lat.of(ServiceLevel::kL2));
  EXPECT_LT(lat.of(ServiceLevel::kL2), lat.of(ServiceLevel::kL3Local));
  EXPECT_LT(lat.of(ServiceLevel::kL3Local), lat.of(ServiceLevel::kL3Remote));
  EXPECT_LT(lat.of(ServiceLevel::kL3Remote), lat.of(ServiceLevel::kL4));
  EXPECT_LT(lat.of(ServiceLevel::kL4), lat.of(ServiceLevel::kDram));
}

TEST(Hierarchy, L4SavesOver30ns) {
  // Paper: "an L4 hit reduces the latency of an L3 miss by over 30 ns".
  const HierarchyLatencies lat;
  EXPECT_GT(lat.of(ServiceLevel::kDram) - lat.of(ServiceLevel::kL4), 30.0);
}

TEST(Hierarchy, LookupDoesNotMutate) {
  ChipMemoryModel m(e870_hierarchy());
  EXPECT_EQ(m.lookup(0), ServiceLevel::kDram);
  EXPECT_EQ(m.lookup(0), ServiceLevel::kDram);
  m.access(0);
  EXPECT_EQ(m.lookup(0), ServiceLevel::kL1);
}

TEST(Hierarchy, ClearResets) {
  ChipMemoryModel m(e870_hierarchy());
  m.access(0);
  m.clear();
  EXPECT_EQ(m.access(0), ServiceLevel::kDram);
}

// ------------------------------------------------------ write path ---------

TEST(WritePath, StoreThroughL1NeverDirties) {
  ChipMemoryModel m(e870_hierarchy());
  m.access(0);               // line cached
  m.access_write(0);         // store hits L1+L2
  // Stream far past every SRAM level; the only dirty copy was in L2,
  // so exactly one line crosses the write link when it finally leaves.
  for (std::uint64_t a = 128; a <= mib(80); a += 128) m.access(a);
  EXPECT_EQ(m.counters().memlink_line_writes, 1u);
}

TEST(WritePath, WriteAllocateFetchesTheLine) {
  ChipMemoryModel m(e870_hierarchy());
  const auto before = m.counters().memlink_line_reads;
  EXPECT_EQ(m.access_write(1 << 20), ServiceLevel::kDram);
  EXPECT_EQ(m.counters().memlink_line_reads, before + 1);
  EXPECT_EQ(m.counters().stores, 1u);
}

TEST(WritePath, RepeatedStoresStayInL2) {
  ChipMemoryModel m(e870_hierarchy());
  m.access_write(0);
  const auto reads = m.counters().memlink_line_reads;
  for (int i = 0; i < 10; ++i) EXPECT_EQ(m.access_write(0), ServiceLevel::kL2);
  EXPECT_EQ(m.counters().memlink_line_reads, reads);  // no refetch
  EXPECT_EQ(m.counters().memlink_line_writes, 0u);    // not yet evicted
}

TEST(WritePath, CleanEvictionsCostNoWriteTraffic) {
  ChipMemoryModel m(e870_hierarchy());
  // Read-only streaming far beyond every cache level.
  for (std::uint64_t a = 0; a <= mib(100); a += 128) m.access(a);
  EXPECT_EQ(m.counters().memlink_line_writes, 0u);
  EXPECT_EQ(m.counters().dram_writes, 0u);
  EXPECT_GT(m.counters().memlink_line_reads, 0u);
}

TEST(WritePath, StreamCopyIsTwoToOneAtTheLinks) {
  // c[i] = a[i]: per line, one demand read + one write-allocate read
  // vs one eventual write-back — the mechanism behind the paper's
  // optimal 2:1 read:write ratio (Table III).  The ratio is measured
  // in steady state: a warm phase first fills the SRAM hierarchy with
  // dirty lines so the write-back pipeline is flowing.
  ChipMemoryModel m(e870_hierarchy());
  const std::uint64_t lines = mib(96) / 128;
  const std::uint64_t src = 0;
  const std::uint64_t dst = 1ull << 32;
  for (std::uint64_t l = 0; l < lines; ++l) {
    if (l == lines / 2) m.reset_counters();  // enter steady state
    m.access(src + l * 128);
    m.access_write(dst + l * 128);
  }
  const auto& c = m.counters();
  ASSERT_GT(c.memlink_line_writes, 0u);
  EXPECT_NEAR(c.memlink_read_to_write(), 2.0, 0.2);
}

TEST(WritePath, TriadIsThreeToOneAtTheLinks) {
  ChipMemoryModel m(e870_hierarchy());
  const std::uint64_t lines = mib(96) / 128;
  for (std::uint64_t l = 0; l < lines; ++l) {
    if (l == lines / 2) m.reset_counters();
    m.access((1ull << 32) + l * 128);
    m.access((2ull << 32) + l * 128);
    m.access_write((3ull << 32) + l * 128);
  }
  EXPECT_NEAR(m.counters().memlink_read_to_write(), 3.0, 0.3);
}

TEST(WritePath, CountersReset) {
  ChipMemoryModel m(e870_hierarchy());
  m.access(0);
  m.access_write(128);
  m.reset_counters();
  EXPECT_EQ(m.counters().loads, 0u);
  EXPECT_EQ(m.counters().stores, 0u);
  EXPECT_EQ(m.counters().memlink_line_reads, 0u);
}

TEST(WritePath, DirtyLineSurvivesRoundTripThroughL3) {
  ChipMemoryModel m(e870_hierarchy());
  m.access_write(0);  // dirty in L2
  // Push it to L3 (1 MB stream), then touch it again: still no write
  // traffic has left the chip.
  for (std::uint64_t a = 128; a <= mib(1); a += 128) m.access(a);
  EXPECT_EQ(m.counters().memlink_line_writes, 0u);
  EXPECT_EQ(m.access(0), ServiceLevel::kL3Local);
}

TEST(Cache, DirtyTrackingPrimitives) {
  SetAssocCache c(kib(1), 2, 64);
  EXPECT_FALSE(c.mark_dirty(0));  // not present
  c.install_line(0, false);
  EXPECT_FALSE(c.is_dirty(0));
  EXPECT_TRUE(c.mark_dirty(0));
  EXPECT_TRUE(c.is_dirty(0));
  // Refresh with clean does not clear dirty.
  c.install_line(0, false);
  EXPECT_TRUE(c.is_dirty(0));
  // Eviction reports dirty state.
  const std::uint64_t stride = 8 * 64;
  c.install_line(1 * stride, false);
  const auto ev = c.install_line(2 * stride, false);
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->line, 0u);
  EXPECT_TRUE(ev->dirty);
}

// ---------------------------------------------------------- fuzz / props --

TEST(CacheFuzz, RandomOpsPreserveInvariants) {
  // Random interleaving of access/install/invalidate/mark_dirty against
  // a reference map of resident lines.
  common::Xoshiro256 rng(99);
  SetAssocCache cache(kib(4), 4, 64);
  const std::uint64_t kLines = 256;  // 4x the capacity: plenty of churn
  std::set<std::uint64_t> resident;

  for (int op = 0; op < 20000; ++op) {
    const std::uint64_t addr = rng.bounded(kLines) * 64;
    switch (rng.bounded(4)) {
      case 0: {
        const auto r = cache.access(addr);
        EXPECT_EQ(r.hit, resident.count(addr / 64 * 64) > 0);
        resident.insert(addr);
        if (r.evicted) {
          EXPECT_EQ(resident.erase(*r.evicted), 1u) << "phantom eviction";
        }
        break;
      }
      case 1: {
        const auto ev = cache.install_line(addr, rng.bounded(2) == 0);
        resident.insert(addr);
        if (ev) EXPECT_EQ(resident.erase(ev->line), 1u);
        break;
      }
      case 2: {
        const bool was = cache.invalidate(addr);
        EXPECT_EQ(was, resident.erase(addr) == 1u);
        break;
      }
      default: {
        const bool found = cache.mark_dirty(addr);
        EXPECT_EQ(found, resident.count(addr) > 0);
        if (found) EXPECT_TRUE(cache.is_dirty(addr));
        break;
      }
    }
    ASSERT_EQ(cache.resident_lines(), resident.size());
    ASSERT_LE(cache.resident_lines(), kib(4) / 64);
  }
}

TEST(HierarchyFuzz, LookupAlwaysConsistentWithAccess) {
  // For a random access stream, lookup() must predict exactly the level
  // the next access() is serviced from.
  common::Xoshiro256 rng(7);
  ChipMemoryModel m(e870_hierarchy());
  for (int op = 0; op < 5000; ++op) {
    const std::uint64_t addr = rng.bounded(1u << 18) * 128;
    const ServiceLevel predicted = m.lookup(addr);
    const ServiceLevel actual = m.access(addr);
    ASSERT_EQ(predicted, actual) << "op " << op;
  }
}

TEST(HierarchyFuzz, CountersAreConsistent) {
  common::Xoshiro256 rng(13);
  ChipMemoryModel m(e870_hierarchy());
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  for (int op = 0; op < 30000; ++op) {
    const std::uint64_t addr = rng.bounded(1u << 20) * 128;
    if (rng.bounded(3) == 0) {
      m.access_write(addr);
      ++stores;
    } else {
      m.access(addr);
      ++loads;
    }
  }
  EXPECT_EQ(m.counters().loads, loads);
  EXPECT_EQ(m.counters().stores, stores);
  // DRAM reads are a subset of link reads; write-backs cannot exceed
  // the lines ever dirtied.
  EXPECT_LE(m.counters().dram_reads, m.counters().memlink_line_reads);
  EXPECT_LE(m.counters().memlink_line_writes, stores);
  EXPECT_LE(m.counters().dram_writes, m.counters().memlink_line_writes);
}

TEST(Hierarchy, ToStringNames) {
  EXPECT_STREQ(to_string(ServiceLevel::kL1), "L1");
  EXPECT_STREQ(to_string(ServiceLevel::kDram), "DRAM");
  EXPECT_STREQ(to_string(ServiceLevel::kL3Remote), "L3(remote)");
}

}  // namespace
}  // namespace p8::sim
