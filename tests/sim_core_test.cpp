// Tests for the cycle-level SMT/VSX core simulator (Figure 5
// behaviours).
#include <gtest/gtest.h>

#include "sim/core/coresim.hpp"

namespace p8::sim {
namespace {

CoreSim default_sim() { return CoreSim(CoreSimConfig{}); }

TEST(CoreSim, PeakRequiresTwelveInFlight) {
  const auto sim = default_sim();
  // Exactly the paper's rule: peak iff threads x FMAs >= 12 with an
  // even split, since 2 pipes x 6-cycle latency = 12.
  EXPECT_NEAR(sim.run_fma_loop(1, 12).fraction_of_peak, 1.0, 0.01);
  EXPECT_NEAR(sim.run_fma_loop(2, 6).fraction_of_peak, 1.0, 0.01);
  EXPECT_NEAR(sim.run_fma_loop(4, 3).fraction_of_peak, 1.0, 0.01);
  EXPECT_NEAR(sim.run_fma_loop(6, 2).fraction_of_peak, 1.0, 0.01);
}

TEST(CoreSim, BelowTwelveScalesLinearly) {
  const auto sim = default_sim();
  EXPECT_NEAR(sim.run_fma_loop(1, 6).fraction_of_peak, 0.5, 0.02);
  EXPECT_NEAR(sim.run_fma_loop(1, 3).fraction_of_peak, 0.25, 0.02);
  EXPECT_NEAR(sim.run_fma_loop(2, 3).fraction_of_peak, 0.5, 0.02);
}

TEST(CoreSim, SingleThreadUsesBothPipes) {
  const auto sim = default_sim();
  // ST mode: one thread with 12 chains saturates two pipes.
  const auto r = sim.run_fma_loop(1, 12);
  EXPECT_NEAR(r.fraction_of_peak, 1.0, 0.01);
  EXPECT_NEAR(static_cast<double>(r.retired) / r.cycles, 2.0, 0.02);
}

TEST(CoreSim, OddThreadCountsUnderperform) {
  const auto sim = default_sim();
  // With 3 threads x 4 FMAs (12 total) the 2+1 thread-set split
  // starves one pipe; 2x6 and 4x3 do not.
  const double odd = sim.run_fma_loop(3, 4).fraction_of_peak;
  const double even_a = sim.run_fma_loop(2, 6).fraction_of_peak;
  const double even_b = sim.run_fma_loop(4, 3).fraction_of_peak;
  EXPECT_LT(odd, even_a - 0.05);
  EXPECT_LT(odd, even_b - 0.05);
  // Expected value: saturated pipe + 4/6-fed pipe = (1 + 2/3)/2.
  EXPECT_NEAR(odd, 5.0 / 6.0, 0.03);
}

TEST(CoreSim, ThreadSetAblationRemovesOddPenalty) {
  CoreSimConfig cfg;
  cfg.threadset_split = false;
  const CoreSim sim(cfg);
  EXPECT_NEAR(sim.run_fma_loop(3, 4).fraction_of_peak, 1.0, 0.01);
}

TEST(CoreSim, RegisterCliffAtSixThreadsTwelveFmas) {
  const auto sim = default_sim();
  // 12 FMAs x 2 regs x 5 threads = 120 <= 128: fine.
  EXPECT_NEAR(sim.run_fma_loop(4, 12).fraction_of_peak, 1.0, 0.01);
  // 6 threads: 144 > 128 registers — the paper's cliff.
  const double at6 = sim.run_fma_loop(6, 12).fraction_of_peak;
  EXPECT_LT(at6, 0.95);
  EXPECT_GT(at6, 0.6);
  // 8 threads: worse still.
  EXPECT_LT(sim.run_fma_loop(8, 12).fraction_of_peak, at6);
}

TEST(CoreSim, RegisterAblationRemovesCliff) {
  CoreSimConfig cfg;
  cfg.unlimited_registers = true;
  const CoreSim sim(cfg);
  EXPECT_NEAR(sim.run_fma_loop(8, 12).fraction_of_peak, 1.0, 0.01);
}

TEST(CoreSim, SmallLoopsNeedNoRegisters) {
  const auto sim = default_sim();
  // 8 threads x 2 FMAs = 32 registers: no spill, full speed.
  EXPECT_NEAR(sim.run_fma_loop(8, 2).fraction_of_peak, 1.0, 0.01);
}

TEST(CoreSim, RegistersUsedFormula) {
  const auto sim = default_sim();
  EXPECT_EQ(sim.registers_used(6, 12), 144);
  EXPECT_EQ(sim.registers_used(1, 12), 24);
}

TEST(CoreSim, Validation) {
  const auto sim = default_sim();
  EXPECT_THROW(sim.run_fma_loop(0, 4), std::invalid_argument);
  EXPECT_THROW(sim.run_fma_loop(9, 4), std::invalid_argument);
  EXPECT_THROW(sim.run_fma_loop(1, 0), std::invalid_argument);
}

TEST(CoreSim, DeterministicAcrossRuns) {
  const auto sim = default_sim();
  const auto a = sim.run_fma_loop(5, 7);
  const auto b = sim.run_fma_loop(5, 7);
  EXPECT_EQ(a.retired, b.retired);
}

struct SweepCase {
  int threads;
  int fmas;
};

class FmaSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(FmaSweep, FractionBoundedAndConsistent) {
  const auto sim = default_sim();
  const auto [threads, fmas] = GetParam();
  const auto r = sim.run_fma_loop(threads, fmas);
  EXPECT_GE(r.fraction_of_peak, 0.0);
  EXPECT_LE(r.fraction_of_peak, 1.0 + 1e-9);
  // Throughput never exceeds what the in-flight count allows.
  const double max_by_mlp =
      std::min(1.0, static_cast<double>(threads * fmas) / 12.0);
  EXPECT_LE(r.fraction_of_peak, max_by_mlp + 0.02);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, FmaSweep,
    ::testing::Values(SweepCase{1, 1}, SweepCase{1, 4}, SweepCase{1, 24},
                      SweepCase{2, 2}, SweepCase{2, 12}, SweepCase{3, 2},
                      SweepCase{4, 6}, SweepCase{5, 4}, SweepCase{6, 6},
                      SweepCase{7, 12}, SweepCase{8, 1}, SweepCase{8, 16}));

TEST(CoreSim, MoreThreadsNeverHurtWithoutRegisterPressure) {
  const auto sim = default_sim();
  // At 2 FMAs per loop the register footprint stays under 128 for all
  // thread counts; throughput should be non-decreasing in even steps.
  double prev = 0.0;
  for (int t = 2; t <= 8; t += 2) {
    const double f = sim.run_fma_loop(t, 2).fraction_of_peak;
    EXPECT_GE(f, prev - 0.01);
    prev = f;
  }
}

}  // namespace
}  // namespace p8::sim
