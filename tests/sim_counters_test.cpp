// Tests for the simulator-wide event-counter layer: registry
// semantics, component invariants, determinism of the parallel merge,
// and the zero-overhead contract (identical results with counting on
// and off).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "arch/spec.hpp"
#include "common/units.hpp"
#include "sim/counters.hpp"
#include "sim/core/coresim.hpp"
#include "sim/machine/machine.hpp"
#include "sim/machine/sweep.hpp"
#include "sim/mem/bandwidth.hpp"
#include "sim/noc/noc.hpp"
#include "ubench/workloads.hpp"

namespace p8::sim {
namespace {

// ------------------------------------------------------------ registry ----

TEST(CounterRegistry, SlotCreatesAtZeroAndIsStable) {
  CounterRegistry reg;
  std::uint64_t* a = reg.slot("x.y");
  EXPECT_EQ(*a, 0u);
  *a += 3;
  // Creating other names must not move existing slots (map nodes).
  for (int i = 0; i < 100; ++i) reg.slot("fill." + std::to_string(i));
  EXPECT_EQ(a, reg.slot("x.y"));
  EXPECT_EQ(reg.value("x.y"), 3u);
  EXPECT_EQ(reg.value("never.created"), 0u);
}

TEST(CounterRegistry, SnapshotIsNameSorted) {
  CounterRegistry reg;
  *reg.slot("b") = 2;
  *reg.slot("a") = 1;
  *reg.slot("c") = 3;
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].first, "a");
  EXPECT_EQ(snap[1].first, "b");
  EXPECT_EQ(snap[2].first, "c");
}

TEST(CounterRegistry, SumPrefixAndReset) {
  CounterRegistry reg;
  *reg.slot("cache.l1.hit") = 5;
  *reg.slot("cache.l1.miss") = 7;
  *reg.slot("cache.l2.hit") = 11;
  *reg.slot("tlb.walk") = 13;
  EXPECT_EQ(reg.sum_prefix("cache.l1."), 12u);
  EXPECT_EQ(reg.sum_prefix("cache."), 23u);
  EXPECT_EQ(reg.sum_prefix(""), 36u);
  reg.reset();
  EXPECT_EQ(reg.sum_prefix(""), 0u);
  EXPECT_TRUE(reg.contains("tlb.walk"));  // names survive a reset
}

TEST(CounterRegistry, MergeIsOrderInsensitive) {
  CounterRegistry a, b, ab, ba;
  *a.slot("x") = 1;
  *a.slot("shared") = 10;
  *b.slot("y") = 2;
  *b.slot("shared") = 20;
  ab.merge(a);
  ab.merge(b);
  ba.merge(b);
  ba.merge(a);
  EXPECT_EQ(ab.snapshot(), ba.snapshot());
  EXPECT_EQ(ab.value("shared"), 30u);
  EXPECT_EQ(ab.value("x"), 1u);
  EXPECT_EQ(ab.value("y"), 2u);
}

TEST(CounterRegistry, JsonAndCsvShapes) {
  CounterRegistry reg;
  *reg.slot("a.b") = 42;
  const std::string json = reg.to_json("mybench");
  EXPECT_NE(json.find("\"bench\": \"mybench\""), std::string::npos);
  EXPECT_NE(json.find("\"a.b\": 42"), std::string::npos);
  const std::string csv = reg.to_csv();
  EXPECT_NE(csv.find("counter,value\n"), std::string::npos);
  EXPECT_NE(csv.find("a.b,42\n"), std::string::npos);
  // Empty registry still emits valid JSON.
  EXPECT_NE(CounterRegistry{}.to_json("x").find("\"counters\": {}"),
            std::string::npos);
}

TEST(Counter, DetachedHandleIsANoOp) {
  Counter c;
  EXPECT_FALSE(c.attached());
  c.add();     // must not crash
  c.add(100);  // must not crash
  CounterRegistry reg;
  Counter d = make_counter(&reg, "p.", "q");
  EXPECT_TRUE(d.attached());
  d.add(2);
  EXPECT_EQ(reg.value("p.q"), 2u);
  EXPECT_FALSE(make_counter(nullptr, "p.", "q").attached());
}

// -------------------------------------------------- component invariants ----

TEST(CacheCounters, HitMissIdentityOnChase) {
  const Machine machine = Machine(arch::e870());
  CounterRegistry reg;
  ubench::ChaseOptions opt;
  opt.working_set_bytes = 4u << 20;  // L3-and-beyond footprint
  opt.counters = &reg;
  (void)ubench::chase_latency_ns(machine, opt);

  const std::uint64_t accesses =
      reg.value("cache.loads") + reg.value("cache.stores");
  EXPECT_GT(accesses, 0u);
  // Every access looks up the L1 exactly once.
  EXPECT_EQ(reg.value("cache.l1.hit") + reg.value("cache.l1.miss"), accesses);
  // Every L1 miss looks up the L2 exactly once.
  EXPECT_EQ(reg.value("cache.l2.hit") + reg.value("cache.l2.miss"),
            reg.value("cache.l1.miss"));
  // Every L2 miss resolves at exactly one lower level.
  EXPECT_EQ(reg.value("cache.l3.local.hit") + reg.value("cache.l3.victim.hit") +
                reg.value("cache.l3.miss"),
            reg.value("cache.l2.miss"));
  EXPECT_EQ(reg.value("cache.l4.hit") + reg.value("cache.dram.fill"),
            reg.value("cache.l3.miss"));
  // Lines enter via the Centaur read link for both L4 and DRAM service.
  EXPECT_EQ(reg.value("cache.memlink.read.lines"),
            reg.value("cache.l4.hit") + reg.value("cache.dram.fill"));
}

TEST(TlbCounters, EratIdentityOnChase) {
  const Machine machine = Machine(arch::e870());
  CounterRegistry reg;
  ubench::ChaseOptions opt;
  opt.working_set_bytes = 8u << 20;  // beyond the 48 x 64 KB ERAT reach
  opt.counters = &reg;
  (void)ubench::chase_latency_ns(machine, opt);

  const std::uint64_t translations =
      reg.value("tlb.erat.hit") + reg.value("tlb.erat.miss");
  EXPECT_EQ(translations, reg.value("probe.accesses"));
  // Each ERAT miss goes to the TLB: hit there or walk.
  EXPECT_EQ(reg.value("tlb.tlb.hit") + reg.value("tlb.walk"),
            reg.value("tlb.erat.miss"));
  // An 8 MB set with 64 KB pages must actually miss the 48-entry ERAT.
  EXPECT_GT(reg.value("tlb.erat.miss"), 0u);
}

TEST(PrefetchCounters, SequentialScanEngagesUnderDscrNamespace) {
  const Machine machine = Machine(arch::e870());
  CounterRegistry reg;
  ubench::StrideOptions opt;
  opt.stride_lines = 1;
  opt.dscr = 7;
  opt.accesses = 20000;
  opt.counters = &reg;
  (void)ubench::stride_latency_ns(machine, opt);

  // The depth is baked into the namespace.
  EXPECT_GT(reg.value("prefetch.dscr7.stream.confirm"), 0u);
  EXPECT_GT(reg.value("prefetch.dscr7.stream.engage"), 0u);
  EXPECT_GT(reg.value("prefetch.dscr7.issued"), 0u);
  EXPECT_EQ(reg.sum_prefix("prefetch.dscr1."), 0u);
  // Nearly every access of a sequential scan is prefetch-covered.
  EXPECT_GT(reg.value("probe.prefetched_hits"),
            reg.value("probe.accesses") / 2);
  // Prefetched lines install without demand-missing the hierarchy.
  EXPECT_EQ(reg.value("cache.prefetch.install"),
            reg.value("probe.prefetched_hits"));
}

TEST(NocCounters, SingleFlowLinkAccounting) {
  const Machine machine = Machine(arch::e870());
  NocModel noc = machine.noc();
  CounterRegistry reg;
  noc.attach_counters(&reg);

  const double v = noc.one_direction_gbs(0, 1);
  EXPECT_EQ(reg.value("noc.solves"), 1u);
  // One intra-group flow, one hop: the data direction carries exactly
  // v, the reverse direction the request overhead (0.13 v).  All link
  // rates are recorded in integral MB/s.
  std::uint64_t total_mbs = 0, max_mbs = 0, saturated = 0;
  for (const auto& [name, value] : reg.snapshot()) {
    if (name.find(".mbs") != std::string::npos) {
      total_mbs += value;
      max_mbs = std::max(max_mbs, value);
    }
    if (name.find(".saturated") != std::string::npos) saturated += value;
  }
  EXPECT_NEAR(static_cast<double>(max_mbs), 1000.0 * v, 1.0);
  EXPECT_NEAR(static_cast<double>(total_mbs),
              1000.0 * v * (1.0 + noc.params().request_overhead), 2.0);
  // Exactly one constraint — the data-direction X link — binds.
  EXPECT_EQ(saturated, 1u);
}

TEST(MemCounters, BindingMechanismAndSolveCount) {
  const Machine machine = Machine(arch::e870());
  MemoryBandwidthModel mem = machine.memory();
  CounterRegistry reg;
  mem.attach_counters(&reg);

  // Read-only full-system STREAM is read-link bound on this model.
  (void)mem.system_stream_gbs({1, 0});
  EXPECT_EQ(reg.value("mem.stream.solves"), 1u);
  EXPECT_EQ(reg.value("mem.bound.read_link"), 1u);
  EXPECT_EQ(reg.value("mem.bound.concurrency"), 0u);
  // A bound link runs at 1000 per-mille occupancy.
  EXPECT_EQ(reg.value("mem.read_link.occupancy.permille"), 1000u);
  // Single thread on one core is concurrency bound.
  (void)mem.stream_gbs(1, 1, 1, {1, 0});
  EXPECT_EQ(reg.value("mem.stream.solves"), 2u);
  EXPECT_EQ(reg.value("mem.bound.concurrency"), 1u);
  // Random solves keep their own namespace.
  (void)mem.random_gbs(8, 8, 8, 16);
  EXPECT_EQ(reg.value("mem.random.solves"), 1u);
  EXPECT_GT(reg.value("mem.random.rowcap.permille"), 0u);
}

TEST(CoreCounters, IssueAccountingBalances) {
  const Machine machine = Machine(arch::e870());
  CoreSim core = machine.core_sim();
  CounterRegistry reg;
  core.attach_counters(&reg);

  const std::uint64_t cycles = 5000;
  const auto r = core.run_fma_loop(8, 12, cycles);  // spilling regime
  EXPECT_EQ(reg.value("core.fma.retired"), r.retired);
  EXPECT_EQ(reg.value("core.issue.busy_cycles") +
                reg.value("core.issue.idle_cycles"),
            cycles * static_cast<std::uint64_t>(
                         core.config().core.vsx_pipes));
  // 8 threads x 12 chains x 2 regs = 192 > 128: spills must appear.
  EXPECT_GT(reg.value("core.regfile.spill_stalls"), 0u);

  // Non-spilling regime: no spill stalls.
  CounterRegistry reg2;
  CoreSim core2 = machine.core_sim();
  core2.attach_counters(&reg2);
  (void)core2.run_fma_loop(2, 6, cycles);
  EXPECT_EQ(reg2.value("core.regfile.spill_stalls"), 0u);
}

// ------------------------------------------------------- determinism ----

TEST(CounterDeterminism, ParallelMergeMatchesSequentialAnyWorkerCount) {
  const Machine machine = Machine(arch::e870());
  std::vector<std::uint64_t> sizes;
  for (std::uint64_t ws = common::kib(64); ws <= common::mib(4); ws *= 2)
    sizes.push_back(ws);

  CounterRegistry sequential;
  const auto base = ubench::memory_latency_scan(machine, sizes, 64 * 1024,
                                                /*dscr=*/1, &sequential);

  for (const std::size_t workers : {1u, 2u, 5u}) {
    SweepRunner runner(workers);
    CounterRegistry parallel;
    const auto got = ubench::memory_latency_scan(
        machine, sizes, 64 * 1024, /*dscr=*/1, runner, &parallel);
    ASSERT_EQ(got.size(), base.size());
    for (std::size_t i = 0; i < base.size(); ++i)
      EXPECT_EQ(got[i].latency_ns, base[i].latency_ns) << "point " << i;
    EXPECT_EQ(parallel.snapshot(), sequential.snapshot())
        << "workers=" << workers;
  }
}

TEST(CounterDeterminism, RunCountedWithNullSinkBehavesLikeRun) {
  SweepRunner runner(3);
  const auto counted = runner.run_counted(
      8, nullptr, [&](std::size_t i, CounterRegistry* reg) {
        EXPECT_EQ(reg, nullptr);
        return static_cast<int>(i * i);
      });
  for (std::size_t i = 0; i < 8; ++i)
    EXPECT_EQ(counted[i], static_cast<int>(i * i));
}

TEST(CounterOverhead, ResultsIdenticalWithCountingOnAndOff) {
  const Machine machine = Machine(arch::e870());

  ubench::ChaseOptions off;
  off.working_set_bytes = 2u << 20;
  ubench::ChaseOptions on = off;
  CounterRegistry reg;
  on.counters = &reg;
  // Bit-identical latency: counting must not perturb the simulation.
  EXPECT_EQ(ubench::chase_latency_ns(machine, off),
            ubench::chase_latency_ns(machine, on));
  EXPECT_GT(reg.sum_prefix("cache."), 0u);

  ubench::StrideOptions s_off;
  s_off.accesses = 20000;
  ubench::StrideOptions s_on = s_off;
  CounterRegistry reg2;
  s_on.counters = &reg2;
  EXPECT_EQ(ubench::stride_latency_ns(machine, s_off),
            ubench::stride_latency_ns(machine, s_on));

  NocModel plain = machine.noc();
  NocModel counted = machine.noc();
  CounterRegistry reg3;
  counted.attach_counters(&reg3);
  EXPECT_EQ(plain.all_to_all_gbs(), counted.all_to_all_gbs());
}

}  // namespace
}  // namespace p8::sim
