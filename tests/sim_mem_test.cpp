// Tests for the analytic memory-bandwidth model: Table III, Fig. 3 and
// Fig. 4 behaviours must emerge from the mechanisms.
#include <gtest/gtest.h>

#include "arch/spec.hpp"
#include "sim/mem/bandwidth.hpp"

namespace p8::sim {
namespace {

MemoryBandwidthModel e870_model() {
  return MemoryBandwidthModel(arch::e870());
}

// ------------------------------------------------------------ Table III ----

struct MixRow {
  const char* name;
  RwMix mix;
  double paper_gbs;
};

class TableIII : public ::testing::TestWithParam<MixRow> {};

TEST_P(TableIII, WithinTenPercentOfPaper) {
  const auto& row = GetParam();
  const double got = e870_model().system_stream_gbs(row.mix);
  EXPECT_NEAR(got, row.paper_gbs, row.paper_gbs * 0.10)
      << row.name << ": model " << got << " paper " << row.paper_gbs;
}

INSTANTIATE_TEST_SUITE_P(
    Mixes, TableIII,
    ::testing::Values(MixRow{"read-only", {1, 0}, 1141.0},
                      MixRow{"16:1", {16, 1}, 1208.0},
                      MixRow{"8:1", {8, 1}, 1267.0},
                      MixRow{"4:1", {4, 1}, 1375.0},
                      MixRow{"2:1", {2, 1}, 1472.0},
                      MixRow{"1:1", {1, 1}, 894.0},
                      MixRow{"1:2", {1, 2}, 748.0},
                      MixRow{"1:4", {1, 4}, 658.0},
                      MixRow{"write-only", {0, 1}, 589.0}),
    [](const auto& info) {
      std::string n = info.param.name;
      for (auto& ch : n)
        if (!isalnum(static_cast<unsigned char>(ch))) ch = '_';
      return n;
    });

TEST(MemModel, TwoToOneIsTheOptimum) {
  const auto m = e870_model();
  const double best = m.system_stream_gbs({2, 1});
  for (const RwMix mix : {RwMix{1, 0}, RwMix{16, 1}, RwMix{8, 1},
                          RwMix{4, 1}, RwMix{1, 1}, RwMix{1, 2},
                          RwMix{1, 4}, RwMix{0, 1}})
    EXPECT_GE(best, m.system_stream_gbs(mix));
}

TEST(MemModel, PeakIsAbout80PercentOfSpec) {
  const auto spec = arch::e870();
  const double got = e870_model().system_stream_gbs({2, 1});
  const double fraction = got / spec.peak_mem_gbs();
  EXPECT_GT(fraction, 0.75);
  EXPECT_LT(fraction, 0.85);
}

TEST(MemModel, WriteOnlyIsLessThanHalfOfOptimal) {
  const auto m = e870_model();
  EXPECT_LT(m.system_stream_gbs({0, 1}),
            0.5 * m.system_stream_gbs({2, 1}));
}

// ---------------------------------------------------------------- Fig 3 ----

TEST(MemModel, SingleCorePeaksNear26GBs) {
  const auto m = e870_model();
  const double bw = m.stream_gbs(1, 1, 8, {2, 1});
  EXPECT_NEAR(bw, 26.0, 3.0);
}

TEST(MemModel, SingleCoreScalesWithThreads) {
  const auto m = e870_model();
  double prev = 0.0;
  for (int t = 1; t <= 8; ++t) {
    const double bw = m.stream_gbs(1, 1, t, {2, 1});
    EXPECT_GE(bw, prev);
    prev = bw;
  }
  // One thread alone cannot saturate the core.
  EXPECT_LT(m.stream_gbs(1, 1, 1, {2, 1}),
            0.5 * m.stream_gbs(1, 1, 8, {2, 1}));
}

TEST(MemModel, ChipPeaksNear189GBs) {
  const auto m = e870_model();
  EXPECT_NEAR(m.stream_gbs(1, 8, 8, {2, 1}), 189.0, 12.0);
}

TEST(MemModel, ChipNeedsAllCoresAndThreads) {
  const auto m = e870_model();
  const double full = m.stream_gbs(1, 8, 8, {2, 1});
  EXPECT_LT(m.stream_gbs(1, 4, 8, {2, 1}), full);
  EXPECT_LT(m.stream_gbs(1, 8, 1, {2, 1}), full);
}

TEST(MemModel, ChipScalesWithCores) {
  const auto m = e870_model();
  double prev = 0.0;
  for (int c = 1; c <= 8; ++c) {
    const double bw = m.stream_gbs(1, c, 8, {2, 1});
    EXPECT_GE(bw, prev);
    prev = bw;
  }
}

TEST(MemModel, ShallowPrefetchLowersConcurrencyCap) {
  const auto m = e870_model();
  EXPECT_LT(m.stream_gbs(1, 1, 1, {2, 1}, /*dscr=*/1),
            m.stream_gbs(1, 1, 1, {2, 1}, /*dscr=*/7));
}

TEST(MemModel, CapsExposedAreConsistent) {
  const auto m = e870_model();
  const RwMix mix{2, 1};
  const double bw = m.system_stream_gbs(mix);
  EXPECT_LE(bw, m.read_link_cap_gbs(8, mix) + 1e-9);
  EXPECT_LE(bw, m.write_link_cap_gbs(8, mix) + 1e-9);
  EXPECT_LE(bw, m.fabric_cap_gbs(8) + 1e-9);
}

TEST(MemModel, ArgumentValidation) {
  const auto m = e870_model();
  EXPECT_THROW(m.stream_gbs(0, 1, 1, {2, 1}), std::invalid_argument);
  EXPECT_THROW(m.stream_gbs(1, 9, 1, {2, 1}), std::invalid_argument);
  EXPECT_THROW(m.stream_gbs(1, 1, 9, {2, 1}), std::invalid_argument);
  EXPECT_THROW(m.stream_gbs(1, 1, 1, {0, 0}), std::invalid_argument);
}

// ---------------------------------------------------------------- Fig 4 ----

TEST(MemModel, RandomPeaksNear41PercentOfReadPeak) {
  const auto m = e870_model();
  const double peak = m.random_gbs(8, 8, 8, 16);
  const double fraction = peak / arch::e870().peak_read_gbs();
  EXPECT_GT(fraction, 0.35);
  EXPECT_LT(fraction, 0.45);
}

TEST(MemModel, RandomScalesWithThreadsAtLowConcurrency) {
  const auto m = e870_model();
  const double one = m.random_gbs(8, 8, 1, 1);
  const double two = m.random_gbs(8, 8, 2, 1);
  EXPECT_GT(two, 1.6 * one);  // near-linear regime
}

TEST(MemModel, Smt8ReachesPeakWithFourStreams) {
  const auto m = e870_model();
  const double at4 = m.random_gbs(8, 8, 8, 4);
  const double at16 = m.random_gbs(8, 8, 8, 16);
  EXPECT_GT(at4, 0.97 * at16);
}

TEST(MemModel, Smt4NeedsMoreStreamsThanSmt8) {
  const auto m = e870_model();
  // At 2 streams, SMT8 is already close to peak while SMT4 is not.
  const double peak = m.random_gbs(8, 8, 8, 16);
  EXPECT_GT(m.random_gbs(8, 8, 8, 2), 0.9 * peak);
  EXPECT_LT(m.random_gbs(8, 8, 4, 2), 0.85 * peak);
  // SMT4 catches up once each thread chases enough lists.
  EXPECT_GT(m.random_gbs(8, 8, 4, 16), 0.97 * peak);
}

TEST(MemModel, RandomMonotoneInEverything) {
  const auto m = e870_model();
  double prev = 0.0;
  for (int s = 1; s <= 16; s *= 2) {
    const double bw = m.random_gbs(8, 8, 4, s);
    EXPECT_GE(bw, prev);
    prev = bw;
  }
  EXPECT_GE(m.random_gbs(8, 8, 8, 4), m.random_gbs(4, 8, 8, 4));
  EXPECT_GE(m.random_gbs(8, 8, 8, 4), m.random_gbs(8, 4, 8, 4));
}

TEST(MemModel, RandomValidation) {
  const auto m = e870_model();
  EXPECT_THROW(m.random_gbs(0, 1, 1, 1), std::invalid_argument);
  EXPECT_THROW(m.random_gbs(1, 1, 1, 0), std::invalid_argument);
}

}  // namespace
}  // namespace p8::sim
