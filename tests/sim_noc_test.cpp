// Tests for the SMP interconnect model: the Table IV latencies,
// point-to-point bandwidths, and the aggregate orderings the paper
// highlights.
#include <gtest/gtest.h>

#include "arch/spec.hpp"
#include "arch/topology.hpp"
#include "sim/noc/noc.hpp"

namespace p8::sim {
namespace {

NocModel e870_noc() {
  return NocModel(arch::Topology::from_spec(arch::e870()));
}

// ------------------------------------------------- Table IV latencies ------

struct LatRow {
  int chip;
  double paper_ns;
};

class TableIVLatency : public ::testing::TestWithParam<LatRow> {};

TEST_P(TableIVLatency, WithinTenPercent) {
  const auto noc = e870_noc();
  const auto& row = GetParam();
  EXPECT_NEAR(noc.memory_latency_ns(0, row.chip), row.paper_ns,
              row.paper_ns * 0.10);
}

INSTANTIATE_TEST_SUITE_P(Chips, TableIVLatency,
                         ::testing::Values(LatRow{1, 123}, LatRow{2, 125},
                                           LatRow{3, 133}, LatRow{4, 213},
                                           LatRow{5, 235}, LatRow{6, 237},
                                           LatRow{7, 243}));

TEST(Noc, PrefetchCutsLatencyByAnOrderOfMagnitude) {
  const auto noc = e870_noc();
  for (int chip = 1; chip < 8; ++chip) {
    const double demand = noc.memory_latency_ns(0, chip);
    const double prefetched = noc.memory_latency_prefetched_ns(0, chip);
    EXPECT_LT(prefetched, demand / 7.0) << "chip " << chip;
    EXPECT_GT(prefetched, 5.0);  // not free either
  }
}

// ---------------------------------------------- Table IV bandwidths --------

TEST(Noc, IntraGroupOneDirection30) {
  const auto noc = e870_noc();
  for (int b : {1, 2, 3})
    EXPECT_NEAR(noc.one_direction_gbs(0, b), 30.0, 3.0);
}

TEST(Noc, IntraGroupBidirection53) {
  const auto noc = e870_noc();
  for (int b : {1, 2, 3})
    EXPECT_NEAR(noc.bidirection_gbs(0, b), 53.0, 5.0);
}

TEST(Noc, InterGroupOneDirection45) {
  const auto noc = e870_noc();
  for (int b : {4, 5, 6, 7})
    EXPECT_NEAR(noc.one_direction_gbs(0, b), 45.0, 4.5) << "chip " << b;
}

TEST(Noc, InterGroupBidirection82to87) {
  const auto noc = e870_noc();
  for (int b : {4, 5, 6, 7}) {
    const double bw = noc.bidirection_gbs(0, b);
    EXPECT_GT(bw, 75.0) << "chip " << b;
    EXPECT_LT(bw, 92.0) << "chip " << b;
  }
}

TEST(Noc, InterGroupBeatsIntraGroupPointBandwidth) {
  // The paper's counter-intuitive result: multipath inter-group beats
  // the single-route intra-group despite slower links.
  const auto noc = e870_noc();
  EXPECT_GT(noc.one_direction_gbs(0, 4), noc.one_direction_gbs(0, 1));
  EXPECT_GT(noc.bidirection_gbs(0, 5), noc.bidirection_gbs(0, 2));
}

TEST(Noc, InterleavedIsIngestBound) {
  const auto noc = e870_noc();
  EXPECT_NEAR(noc.interleaved_to_chip_gbs(0), 69.0, 7.0);
}

TEST(Noc, XAggregateNear632) {
  EXPECT_NEAR(e870_noc().xbus_aggregate_gbs(), 632.0, 40.0);
}

TEST(Noc, AAggregateNear206) {
  EXPECT_NEAR(e870_noc().abus_aggregate_gbs(), 206.0, 15.0);
}

TEST(Noc, XAggregateIsAboutThreeTimesA) {
  const auto noc = e870_noc();
  const double ratio = noc.xbus_aggregate_gbs() / noc.abus_aggregate_gbs();
  EXPECT_GT(ratio, 2.5);
  EXPECT_LT(ratio, 3.5);
}

TEST(Noc, AllToAllSitsBetweenAggregates) {
  const auto noc = e870_noc();
  const double all = noc.all_to_all_gbs();
  EXPECT_GT(all, noc.abus_aggregate_gbs());
  EXPECT_LT(all, noc.xbus_aggregate_gbs());
}

TEST(Noc, SymmetricByConstruction) {
  const auto noc = e870_noc();
  for (int b = 1; b < 8; ++b) {
    EXPECT_NEAR(noc.one_direction_gbs(0, b), noc.one_direction_gbs(b, 0),
                1e-9);
    EXPECT_NEAR(noc.bidirection_gbs(0, b), noc.bidirection_gbs(b, 0), 1e-9);
  }
}

TEST(Noc, UniformFlowValidation) {
  const auto noc = e870_noc();
  EXPECT_THROW(noc.max_uniform_flow_gbs({}), std::invalid_argument);
  EXPECT_THROW(noc.max_uniform_flow_gbs({{0, 0}}), std::invalid_argument);
}

TEST(Noc, SingleRouteRestrictionLowersPartnerBandwidth) {
  // direct_only removes the multipath advantage.
  const auto noc = e870_noc();
  const double multi = noc.max_uniform_flow_gbs({{4, 0}});
  const double direct = noc.max_uniform_flow_gbs({{4, 0}}, true);
  EXPECT_GT(multi, direct);
}

TEST(Noc, RoutingAblationSingleRouteEverywhere) {
  // With max_routes = 1 the inter-group advantage disappears.
  NocParams params;
  params.max_routes_inter_group = 1;
  NocModel noc(arch::Topology::from_spec(arch::e870()), params);
  EXPECT_LE(noc.one_direction_gbs(0, 4), noc.one_direction_gbs(0, 1));
}

TEST(Noc, LatencyIncludesLocalDram) {
  const auto noc = e870_noc();
  EXPECT_NEAR(noc.memory_latency_ns(0, 0), noc.params().local_dram_latency_ns,
              1e-9);
}

}  // namespace
}  // namespace p8::sim
