// Tests for the hardware prefetch engine: stream confirmation, DSCR
// depths, stride-N detection and DCBT hints.
#include <gtest/gtest.h>

#include "sim/prefetch/engine.hpp"

namespace p8::sim {
namespace {

constexpr std::uint64_t kLine = 128;

PrefetchConfig config_with(int dscr, bool stride_n = false) {
  PrefetchConfig c;
  c.dscr = dscr;
  c.stride_n_enabled = stride_n;
  return c;
}

// Feeds `n` sequential line accesses and returns total prefetches.
std::size_t run_sequential(PrefetchEngine& e, int n, std::uint64_t start = 0) {
  std::size_t total = 0;
  for (int i = 0; i < n; ++i)
    total += e.on_access(start + static_cast<std::uint64_t>(i) * kLine).size();
  return total;
}

TEST(PrefetchConfig, DepthEncoding) {
  EXPECT_EQ(config_with(1).depth_lines(), 0);  // disabled
  EXPECT_EQ(config_with(2).depth_lines(), 1);
  EXPECT_EQ(config_with(7).depth_lines(), 8);  // deepest
  EXPECT_EQ(config_with(0).depth_lines(), 8);  // hardware default: deep
  for (int d = 2; d < 7; ++d)
    EXPECT_LT(config_with(d).depth_lines(), config_with(d + 1).depth_lines());
}

TEST(PrefetchEngine, DisabledIssuesNothing) {
  PrefetchEngine e(config_with(1));
  EXPECT_EQ(run_sequential(e, 50), 0u);
}

TEST(PrefetchEngine, NeedsConfirmationBeforeIssuing) {
  PrefetchEngine e(config_with(7));
  EXPECT_TRUE(e.on_access(0).empty());          // allocation miss
  EXPECT_TRUE(e.on_access(kLine).empty());      // first advance
  EXPECT_FALSE(e.on_access(2 * kLine).empty()); // confirmed -> issue
}

TEST(PrefetchEngine, RampsUpGradually) {
  // Hardware streams start shallow and deepen by one line per
  // confirmed access — the §III-D "kicks in too late" behaviour.
  PrefetchEngine e(config_with(7));
  e.on_access(0);
  e.on_access(kLine);
  const auto first = e.on_access(2 * kLine);
  ASSERT_EQ(first.size(), 2u);
  EXPECT_EQ(first[0].line_addr, 3 * kLine);
  EXPECT_EQ(first[1].line_addr, 4 * kLine);
  // The next access deepens the run-ahead.
  const auto second = e.on_access(3 * kLine);
  ASSERT_EQ(second.size(), 2u);  // one step + one ramp extension
}

TEST(PrefetchEngine, RampReachesFullDepth) {
  PrefetchEngine e(config_with(7));
  std::int64_t high_water = 0;
  for (int i = 0; i < 20; ++i)
    for (const auto& r : e.on_access(static_cast<std::uint64_t>(i) * kLine))
      high_water = static_cast<std::int64_t>(r.line_addr / kLine);
  // After the ramp, the engine runs the full 8 lines ahead.
  EXPECT_EQ(high_water, 19 + 8);
}

TEST(PrefetchEngine, DcbtSkipsTheRamp) {
  // A DCBT-hinted stream starts fully ramped: the initial burst
  // already spans the whole depth.
  PrefetchEngine e(config_with(7));
  const auto reqs = e.hint_stream(0, 64 * kLine);
  ASSERT_EQ(reqs.size(), 8u);
}

TEST(PrefetchEngine, SteadyStateIssuesOnePerAccess) {
  PrefetchEngine e(config_with(7));
  run_sequential(e, 20);
  const auto reqs = e.on_access(20 * kLine);
  ASSERT_EQ(reqs.size(), 1u);
  EXPECT_EQ(reqs[0].line_addr, 28 * kLine);  // high-water + 1 step
}

TEST(PrefetchEngine, SameLineRetouchDoesNotAdvance) {
  PrefetchEngine e(config_with(7));
  run_sequential(e, 10);
  EXPECT_TRUE(e.on_access(9 * kLine).empty());
}

TEST(PrefetchEngine, DescendingStreamsWork) {
  PrefetchEngine e(config_with(7));
  const std::uint64_t top = 100 * kLine;
  e.on_access(top);
  e.on_access(top - kLine);
  const auto reqs = e.on_access(top - 2 * kLine);
  ASSERT_FALSE(reqs.empty());
  EXPECT_EQ(reqs[0].line_addr, top - 3 * kLine);
}

TEST(PrefetchEngine, BrokenPatternResets) {
  PrefetchEngine e(config_with(7));
  run_sequential(e, 10);
  // Jump far away: the stream restarts and must re-confirm.
  EXPECT_TRUE(e.on_access(1000 * kLine).empty());
  EXPECT_TRUE(e.on_access(2000 * kLine).empty());
}

TEST(PrefetchEngine, DefaultDetectorIgnoresLargeStrides) {
  PrefetchEngine e(config_with(7, /*stride_n=*/false));
  std::size_t total = 0;
  for (int i = 0; i < 30; ++i)
    total += e.on_access(static_cast<std::uint64_t>(i) * 256 * kLine).size();
  EXPECT_EQ(total, 0u);
}

TEST(PrefetchEngine, StrideNDetectorLocksLargeStrides) {
  PrefetchEngine e(config_with(7, /*stride_n=*/true));
  std::size_t total = 0;
  for (int i = 0; i < 30; ++i)
    total += e.on_access(static_cast<std::uint64_t>(i) * 256 * kLine).size();
  EXPECT_GT(total, 20u);
}

TEST(PrefetchEngine, StrideNPrefetchesAtStride) {
  PrefetchEngine e(config_with(7, /*stride_n=*/true));
  e.on_access(0);
  e.on_access(256 * kLine);
  const auto reqs = e.on_access(512 * kLine);
  ASSERT_FALSE(reqs.empty());
  EXPECT_EQ(reqs[0].line_addr, (512 + 256) * kLine);
}

TEST(PrefetchEngine, StrideBeyondDetectorLimitIgnored) {
  PrefetchConfig c = config_with(7, true);
  c.max_stride_lines = 64;
  PrefetchEngine e(c);
  std::size_t total = 0;
  for (int i = 0; i < 30; ++i)
    total += e.on_access(static_cast<std::uint64_t>(i) * 128 * kLine).size();
  EXPECT_EQ(total, 0u);
}

TEST(PrefetchEngine, DcbtInstallsEngagedStream) {
  PrefetchEngine e(config_with(7));
  const auto reqs = e.hint_stream(0, 64 * kLine);
  // Initial burst covers the start of the array immediately.
  ASSERT_EQ(reqs.size(), 8u);
  EXPECT_EQ(reqs[0].line_addr, 0u);
  EXPECT_EQ(reqs[7].line_addr, 7 * kLine);
}

TEST(PrefetchEngine, DcbtRespectsArrayEnd) {
  PrefetchEngine e(config_with(7));
  // A 3-line array: the burst must not run past it.
  const auto reqs = e.hint_stream(0, 3 * kLine);
  EXPECT_EQ(reqs.size(), 3u);
}

TEST(PrefetchEngine, DcbtDescending) {
  PrefetchEngine e(config_with(7));
  const std::uint64_t base = 100 * kLine;
  const auto reqs = e.hint_stream(base, 4 * kLine, /*descending=*/true);
  ASSERT_EQ(reqs.size(), 4u);
  EXPECT_EQ(reqs[0].line_addr, base);
  EXPECT_EQ(reqs[3].line_addr, base - 3 * kLine);
}

TEST(PrefetchEngine, DcbtStopFreesSlot) {
  PrefetchConfig c = config_with(7);
  c.max_streams = 2;
  PrefetchEngine e(c);
  e.hint_stream(0, 64 * kLine);
  EXPECT_EQ(e.active_streams(), 1u);
  e.hint_stop(0);
  EXPECT_EQ(e.active_streams(), 0u);
}

TEST(PrefetchEngine, StreamTableEvictsLru) {
  PrefetchConfig c = config_with(7);
  c.max_streams = 2;
  PrefetchEngine e(c);
  // Three interleaved streams fight over two slots; the engine must
  // not crash and keeps at most two.
  for (int i = 0; i < 10; ++i) {
    e.on_access(static_cast<std::uint64_t>(i) * kLine);
    e.on_access((10000 + static_cast<std::uint64_t>(i)) * kLine);
    e.on_access((20000 + static_cast<std::uint64_t>(i)) * kLine);
  }
  EXPECT_LE(e.active_streams(), 2u);
}

TEST(PrefetchEngine, ClearDropsState) {
  PrefetchEngine e(config_with(7));
  run_sequential(e, 10);
  e.clear();
  EXPECT_EQ(e.active_streams(), 0u);
  EXPECT_TRUE(e.on_access(11 * kLine).empty());
}

TEST(PrefetchEngine, ConfigValidation) {
  PrefetchConfig c;
  c.dscr = 9;
  EXPECT_THROW(PrefetchEngine{c}, std::invalid_argument);
  c.dscr = 0;
  c.max_streams = 0;
  EXPECT_THROW(PrefetchEngine{c}, std::invalid_argument);
}

class PrefetchDepthSweep : public ::testing::TestWithParam<int> {};

TEST_P(PrefetchDepthSweep, HighWaterNeverExceedsDepth) {
  const int dscr = GetParam();
  PrefetchEngine e(config_with(dscr));
  const int depth = config_with(dscr).depth_lines();
  std::uint64_t furthest = 0;
  for (int i = 0; i < 100; ++i) {
    for (const auto& r :
         e.on_access(static_cast<std::uint64_t>(i) * kLine))
      furthest = std::max(furthest, r.line_addr / kLine);
    if (furthest > 0)
      EXPECT_LE(furthest, static_cast<std::uint64_t>(i + depth));
  }
}

INSTANTIATE_TEST_SUITE_P(Depths, PrefetchDepthSweep,
                         ::testing::Values(0, 1, 2, 3, 4, 5, 6, 7));

}  // namespace
}  // namespace p8::sim
