// Tests for the event-driven latency probe: service charging, prefetch
// residuals, TLB penalties and SMP hop extras.
#include <gtest/gtest.h>

#include <algorithm>
#include <span>
#include <vector>

#include "arch/spec.hpp"
#include "sim/counters.hpp"
#include "sim/machine/latency_probe.hpp"
#include "sim/machine/machine.hpp"

namespace p8::sim {
namespace {

ProbeConfig base_config(int dscr = 1) {
  ProbeConfig c;
  c.hierarchy = HierarchyConfig::from_spec(arch::e870());
  c.tlb.page_bytes = 16ull << 20;  // huge pages: no TLB noise
  c.prefetch.dscr = dscr;
  return c;
}

TEST(Probe, ColdAccessCostsDram) {
  LatencyProbe p(base_config());
  const auto t = p.access(0);
  EXPECT_EQ(t.level, ServiceLevel::kDram);
  // Huge page, first touch: walk penalty + DRAM.
  EXPECT_NEAR(t.latency_ns,
              base_config().hierarchy.latency.dram_ns + base_config().tlb.walk_ns,
              1e-9);
}

TEST(Probe, WarmAccessCostsL1) {
  LatencyProbe p(base_config());
  p.access(0);
  const auto t = p.access(0);
  EXPECT_EQ(t.level, ServiceLevel::kL1);
  EXPECT_NEAR(t.latency_ns, base_config().hierarchy.latency.l1_ns, 1e-9);
}

TEST(Probe, ClockAdvancesByLatency) {
  LatencyProbe p(base_config());
  const double before = p.now_ns();
  const auto t = p.access(0);
  EXPECT_NEAR(p.now_ns() - before, t.latency_ns, 1e-9);
}

TEST(Probe, ComputeTimeAdvancesClock) {
  auto cfg = base_config();
  cfg.compute_per_access_ns = 50.0;
  LatencyProbe p(cfg);
  const auto t = p.access(0);
  EXPECT_NEAR(p.now_ns(), t.latency_ns + 50.0, 1e-9);
}

TEST(Probe, SequentialChaseSettlesAtResidual) {
  // With DSCR depth d, a dependent sequential chase settles at
  // dram/(d+1) per line (steady-state pipelining).
  auto cfg = base_config(/*dscr=*/7);
  LatencyProbe p(cfg);
  const int depth = cfg.prefetch.depth_lines();
  // Warm-up past detection.
  for (int i = 0; i < 200; ++i) p.access(static_cast<std::uint64_t>(i) * 128);
  const double t0 = p.now_ns();
  const int n = 1000;
  for (int i = 200; i < 200 + n; ++i)
    p.access(static_cast<std::uint64_t>(i) * 128);
  const double avg = (p.now_ns() - t0) / n;
  const double expected =
      cfg.hierarchy.latency.dram_ns / (depth + 1);
  EXPECT_NEAR(avg, expected, expected * 0.25 + 1.0);
}

TEST(Probe, DeeperPrefetchIsFaster) {
  double prev = 1e9;
  for (const int dscr : {1, 2, 4, 7}) {
    LatencyProbe p(base_config(dscr));
    for (int i = 0; i < 100; ++i)
      p.access(static_cast<std::uint64_t>(i) * 128);
    const double t0 = p.now_ns();
    for (int i = 100; i < 600; ++i)
      p.access(static_cast<std::uint64_t>(i) * 128);
    const double avg = (p.now_ns() - t0) / 500.0;
    EXPECT_LT(avg, prev) << "dscr " << dscr;
    prev = avg;
  }
}

TEST(Probe, PrefetchedAccessesAreFlagged) {
  LatencyProbe p(base_config(7));
  int flagged = 0;
  for (int i = 0; i < 100; ++i)
    flagged += p.access(static_cast<std::uint64_t>(i) * 128).prefetched;
  EXPECT_GT(flagged, 80);
}

TEST(Probe, RemoteExtraChargedOnDram) {
  auto cfg = base_config();
  cfg.remote_extra_ns = 118.0;
  LatencyProbe p(cfg);
  const auto t = p.access(0);
  EXPECT_NEAR(t.latency_ns,
              cfg.hierarchy.latency.dram_ns + cfg.tlb.walk_ns + 118.0, 1e-9);
  // Cached accesses do not pay the hop.
  const auto t2 = p.access(0);
  EXPECT_NEAR(t2.latency_ns, cfg.hierarchy.latency.l1_ns, 1e-9);
}

TEST(Probe, SmallPagesPayTlbPenalties) {
  auto cfg = base_config();
  cfg.tlb.page_bytes = 64 * 1024;
  LatencyProbe small(cfg);
  LatencyProbe huge(base_config());
  // Touch one line in each of 200 distinct 64 KB pages, twice.
  double small_total = 0.0;
  double huge_total = 0.0;
  for (int pass = 0; pass < 2; ++pass)
    for (int i = 0; i < 200; ++i) {
      const std::uint64_t addr = static_cast<std::uint64_t>(i) * 64 * 1024;
      const double a = small.access(addr).latency_ns;
      const double b = huge.access(addr).latency_ns;
      if (pass == 1) {
        small_total += a;
        huge_total += b;
      }
    }
  // 200 x 64 KB pages overflow the 48-entry ERAT; 13 MB of huge pages
  // do not.
  EXPECT_GT(small_total, huge_total);
}

TEST(Probe, DcbtHintCoversShortArrays) {
  // Two probes scanning many short arrays at random positions; the
  // DCBT one must be faster.
  auto cfg = base_config(/*dscr=*/0);
  LatencyProbe plain(cfg);
  LatencyProbe hinted(cfg);
  const std::uint64_t kBlock = 8 * 128;  // 8 lines
  for (int b = 0; b < 200; ++b) {
    // Spread blocks far apart so streams cannot chain across blocks.
    const std::uint64_t base =
        (static_cast<std::uint64_t>(b) * 7919 % 100000) * 64 * 1024;
    hinted.dcbt_hint(base, kBlock);
    for (int l = 0; l < 8; ++l) {
      plain.access(base + static_cast<std::uint64_t>(l) * 128);
      hinted.access(base + static_cast<std::uint64_t>(l) * 128);
    }
  }
  EXPECT_LT(hinted.now_ns(), plain.now_ns() * 0.85);
}

TEST(Probe, ResetRestoresColdState) {
  LatencyProbe p(base_config());
  p.access(0);
  p.reset();
  EXPECT_EQ(p.now_ns(), 0.0);
  EXPECT_EQ(p.access(0).level, ServiceLevel::kDram);
}

TEST(Machine, ProbeFactoryWiresRemoteLatency) {
  const Machine m = Machine(arch::e870());
  ProbeOptions local;
  ProbeOptions remote;
  remote.home_chip = 4;
  auto lp = m.probe(local);
  auto rp = m.probe(remote);
  const double l = lp.access(0).latency_ns;
  const double r = rp.access(0).latency_ns;
  EXPECT_NEAR(r - l, m.topology().min_latency_ns(4, 0), 1e-9);
}

// ---------------------------------------------------------------------
// Batched-replay equivalence: access_batch() must leave the probe in
// exactly the state the access() loop produces — virtual clock double
// for double and every counter in the stack — for any pattern and any
// chunking.

/// Replays `trace` through a scalar probe and through access_batch in
/// `chunk`-sized pieces, then requires bit-identical clocks and
/// identical counter snapshots.
void expect_batch_equals_scalar(const ProbeConfig& cfg,
                                const std::vector<std::uint64_t>& trace,
                                std::size_t chunk) {
  LatencyProbe scalar(cfg);
  CounterRegistry scalar_counters;
  scalar.attach_counters(&scalar_counters);
  for (const std::uint64_t addr : trace) scalar.access(addr);

  LatencyProbe batched(cfg);
  CounterRegistry batched_counters;
  batched.attach_counters(&batched_counters);
  BatchStats stats;
  const std::span<const std::uint64_t> all(trace);
  for (std::size_t i = 0; i < trace.size(); i += chunk)
    batched.access_batch(all.subspan(i, std::min(chunk, trace.size() - i)),
                         stats);

  EXPECT_EQ(batched.now_ns(), scalar.now_ns()) << "chunk=" << chunk;
  EXPECT_EQ(batched_counters.to_csv(), scalar_counters.to_csv())
      << "chunk=" << chunk;
  EXPECT_EQ(stats.accesses, trace.size());
}

ProbeConfig small_page_config(int dscr) {
  ProbeConfig c = base_config(dscr);
  c.tlb.page_bytes = 64 * 1024;  // exercise ERAT/TLB misses too
  return c;
}

std::vector<std::uint64_t> random_trace(std::uint64_t working_set_bytes,
                                        std::size_t n) {
  const std::uint64_t lines = working_set_bytes / 128;
  std::vector<std::uint64_t> trace(n);
  std::uint64_t pos = 1;
  for (std::size_t i = 0; i < n; ++i) {
    trace[i] = (pos % lines) * 128;
    pos = pos * 2862933555777941757ULL + 3037000493ULL;
  }
  return trace;
}

std::vector<std::uint64_t> stride_trace(std::size_t n, std::uint64_t lines,
                                        bool descending) {
  std::vector<std::uint64_t> trace(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t step = (static_cast<std::uint64_t>(i) % lines) * 128;
    trace[i] = descending ? (lines * 128 - 128 - step) : step;
  }
  return trace;
}

TEST(ProbeBatch, RandomChaseMatchesScalarEngineOn) {
  const auto trace = random_trace(4ull << 20, 20000);
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{3},
                                  std::size_t{256}, trace.size()})
    expect_batch_equals_scalar(small_page_config(/*dscr=*/1), trace, chunk);
}

TEST(ProbeBatch, RandomChaseMatchesScalarEngineOff) {
  const auto trace = random_trace(4ull << 20, 20000);
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{3},
                                  std::size_t{256}, trace.size()})
    expect_batch_equals_scalar(small_page_config(/*dscr=*/0), trace, chunk);
}

TEST(ProbeBatch, ForwardStrideMatchesScalar) {
  // Ascending unit stride with a deep prefetch setting: the fallback
  // path carries live in-flight prefetches across chunk boundaries.
  const auto trace = stride_trace(20000, 4096, /*descending=*/false);
  for (const std::size_t chunk :
       {std::size_t{1}, std::size_t{3}, std::size_t{1000}})
    expect_batch_equals_scalar(small_page_config(/*dscr=*/7), trace, chunk);
}

TEST(ProbeBatch, BackwardStrideMatchesScalar) {
  const auto trace = stride_trace(20000, 4096, /*descending=*/true);
  for (const std::size_t chunk :
       {std::size_t{1}, std::size_t{3}, std::size_t{1000}})
    expect_batch_equals_scalar(small_page_config(/*dscr=*/7), trace, chunk);
}

TEST(ProbeBatch, DcbtHintedBlockMatchesScalar) {
  // Fig. 8 shape: DCBT stream hint, sequential walk of the block,
  // stream stop — replayed scalar vs batched (chunk a non-divisor of
  // the block length to cross block edges mid-chunk).
  const ProbeConfig cfg = small_page_config(/*dscr=*/0);
  const std::uint64_t block_lines = 64;
  const std::uint64_t blocks = 40;

  LatencyProbe scalar(cfg);
  CounterRegistry scalar_counters;
  scalar.attach_counters(&scalar_counters);
  LatencyProbe batched(cfg);
  CounterRegistry batched_counters;
  batched.attach_counters(&batched_counters);

  std::vector<std::uint64_t> walk(block_lines);
  BatchStats stats;
  for (std::uint64_t b = 0; b < blocks; ++b) {
    const std::uint64_t start = b * block_lines * 128;
    scalar.dcbt_hint(start, block_lines * 128);
    for (std::uint64_t i = 0; i < block_lines; ++i)
      scalar.access(start + i * 128);
    scalar.dcbt_stop(start);

    for (std::uint64_t i = 0; i < block_lines; ++i)
      walk[i] = start + i * 128;
    batched.dcbt_hint(start, block_lines * 128);
    const std::span<const std::uint64_t> all(walk);
    for (std::size_t i = 0; i < walk.size(); i += 7)
      batched.access_batch(
          all.subspan(i, std::min<std::size_t>(7, walk.size() - i)), stats);
    batched.dcbt_stop(start);
  }

  EXPECT_EQ(batched.now_ns(), scalar.now_ns());
  EXPECT_EQ(batched_counters.to_csv(), scalar_counters.to_csv());
}

TEST(Machine, ProbeRejectsBadChips) {
  const Machine m = Machine(arch::e870());
  ProbeOptions bad;
  bad.home_chip = 99;
  EXPECT_THROW(m.probe(bad), std::invalid_argument);
}

}  // namespace
}  // namespace p8::sim
