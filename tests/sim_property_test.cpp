// Property-based tests over randomized machine configurations
// (tests/proptest.hpp): instead of pinning one calibrated machine,
// these pin the *relationships* that must hold for every well-formed
// POWER8-family configuration the registry or a user JSON can express.
//
// The load-bearing property is the first one: the contract between
// sim::ModelAudit and the simulator is that an audit-clean MachineSpec
// must construct and simulate without tripping a single P8_REQUIRE /
// contract check — the audit pre-diagnoses every structural hazard, so
// bench gates can rely on "audit clean => safe to run".
#include <gtest/gtest.h>

#include <cstdint>
#include <exception>
#include <vector>

#include "proptest.hpp"
#include "sim/cache/cache.hpp"
#include "sim/cache/tlb.hpp"
#include "sim/counters.hpp"
#include "sim/machine/spec.hpp"
#include "ubench/workloads.hpp"

namespace {

using namespace p8;

/// A MachineSpec grown from a random registry preset with the
/// structural knobs re-rolled across (and beyond) the plausible
/// POWER8 range.  Some rolls are deliberately invalid — those must be
/// caught by the audit, which is exactly what the first property
/// checks.
sim::MachineSpec random_spec(proptest::Gen& gen) {
  sim::MachineSpec s = sim::machine_spec(sim::machine_names()[static_cast<std::size_t>(
      gen.int_range(0, static_cast<int>(sim::machine_names().size()) - 1))]);
  arch::SystemSpec& sys = s.system;
  sys.sockets = gen.int_range(1, 16);
  sys.chips_per_socket = gen.pick({1, 1, 1, 2});
  sys.cores_per_chip = gen.int_range(1, 12);
  sys.centaurs_per_chip = gen.int_range(1, 8);
  sys.clock_ghz = gen.real_range(2.0, 5.5);
  sys.chips_per_group = gen.pick({1, 2, 3, 4, 6, 8, 16});
  sys.processor.core.smt_threads = gen.pick({1, 2, 4, 8});
  if (gen.chance(0.3)) sys.xbus_gbs = gen.real_range(10.0, 80.0);
  if (gen.chance(0.3)) sys.abus_gbs = gen.real_range(5.0, 30.0);
  if (gen.chance(0.3)) sys.abus_links_per_pair = gen.int_range(1, 4);
  if (gen.chance(0.2)) {
    sys.centaur.read_link_gbs = gen.real_range(5.0, 40.0);
    sys.centaur.write_link_gbs = sys.centaur.read_link_gbs / 2.0;
  }
  if (gen.chance(0.2)) s.mem.stream_latency_ns = gen.real_range(60.0, 300.0);
  if (gen.chance(0.2)) s.noc.ingest_cap_gbs = gen.real_range(30.0, 150.0);
  return s;
}

// ---------------------------------------------------------------------------

TEST(MachineSpecProperty, AuditCleanSpecsSimulateWithoutThrowing) {
  int clean = 0;
  P8_PROP(gen, 200, 0x5eedbea7) {
    const sim::MachineSpec spec = random_spec(gen);
    if (!spec.audit().ok()) continue;  // the audit's job is to reject these
    ++clean;
    try {
      const sim::Machine machine = spec.machine();

      ubench::ChaseOptions opt;
      opt.working_set_bytes = 1u << 16;
      opt.warm_accesses = 1u << 12;
      opt.measure_accesses = 1u << 12;
      EXPECT_GT(ubench::chase_latency_ns(machine, opt), 0.0);

      EXPECT_GT(machine.memory().system_stream_gbs({2, 1}), 0.0);
      const int chips = spec.system.total_chips();
      EXPECT_GT(machine.noc().memory_latency_ns(0, chips - 1), 0.0);
      if (chips > 1) EXPECT_GT(machine.noc().one_direction_gbs(0, chips - 1), 0.0);
    } catch (const std::exception& e) {
      ADD_FAILURE() << "audit-clean spec threw during simulation: " << e.what()
                    << "\nspec:\n"
                    << spec.to_json();
    }
  }
  // The generator must not make the property vacuous: a healthy share
  // of rolls has to survive the audit.
  EXPECT_GE(clean, 40) << "generator produced too few audit-clean specs";
}

TEST(MachineSpecProperty, AuditNeverThrows) {
  // The dual of the property above: for *any* roll, valid or garbage,
  // the audit itself must diagnose rather than die.
  P8_PROP(gen, 200, 0xabad1dea) {
    sim::MachineSpec spec = random_spec(gen);
    // Push some rolls well outside the plausible range.
    if (gen.chance(0.5)) spec.system.cores_per_chip = gen.int_range(-2, 40);
    if (gen.chance(0.5)) spec.system.clock_ghz = gen.real_range(-1.0, 9.0);
    if (gen.chance(0.3)) spec.mem.read_link_eff = gen.real_range(-0.5, 2.0);
    try {
      (void)spec.audit();
    } catch (const std::exception& e) {
      ADD_FAILURE() << "ModelAudit threw: " << e.what();
    }
  }
}

// ---------------------------------------------------------------------------

TEST(CacheProperty, OccupancyNeverExceedsCapacity) {
  P8_PROP(gen, 200, 0xcac4e0cc) {
    const std::uint64_t line = std::uint64_t{1} << gen.int_range(5, 8);
    const unsigned ways = static_cast<unsigned>(gen.int_range(1, 16));
    // Power-of-two set counts (the POWER8 levels) and irregular ones
    // (the division fallback) both must hold the bound.
    const std::uint64_t sets =
        gen.chance(0.5) ? std::uint64_t{1} << gen.int_range(0, 8)
                        : static_cast<std::uint64_t>(gen.int_range(1, 300));
    sim::SetAssocCache cache(sets * ways * line, ways, line);
    const std::uint64_t capacity_lines = sets * ways;

    const std::uint64_t span = sets * ways * line * 8;
    for (int i = 0; i < 512; ++i) {
      cache.touch_install(gen.range(0, span - 1));
      if ((i & 63) == 63)
        ASSERT_LE(cache.resident_lines(), capacity_lines)
            << "line=" << line << " ways=" << ways << " sets=" << sets;
    }
    EXPECT_LE(cache.resident_lines(), capacity_lines);
  }
}

// ---------------------------------------------------------------------------

TEST(TlbProperty, ReachMonotoneInPageSize) {
  // A trace confined within ERAT reach at page size P stays confined
  // at every larger page size (coarser pages only merge pages), so the
  // steady state has zero ERAT misses at P and everything above it.
  P8_PROP(gen, 200, 0x71b4eac4) {
    const int base_shift = gen.int_range(12, 20);  // 4 KB .. 1 MB
    sim::TlbConfig cfg;
    cfg.erat_entries = static_cast<unsigned>(gen.int_range(4, 64));
    const int pages = gen.int_range(1, static_cast<int>(cfg.erat_entries));

    // Distinct base pages with random in-page offsets.
    std::vector<std::uint64_t> addrs;
    for (int p = 0; p < pages; ++p)
      addrs.push_back((static_cast<std::uint64_t>(gen.range(0, 1u << 20))
                       << base_shift) +
                      gen.range(0, (std::uint64_t{1} << base_shift) - 1));

    for (int shift = base_shift; shift <= 24; shift += 2) {
      cfg.page_bytes = std::uint64_t{1} << shift;
      sim::Tlb tlb(cfg);
      sim::CounterRegistry reg;
      tlb.attach_counters(&reg, "t");
      for (const std::uint64_t a : addrs) tlb.translate(a);  // warm
      const std::uint64_t warm_misses = reg.value("t.erat.miss");
      for (int round = 0; round < 4; ++round)
        for (std::size_t i = 0; i < addrs.size(); ++i)
          tlb.translate(addrs[(i * 7 + static_cast<std::size_t>(round)) %
                              addrs.size()]);
      EXPECT_EQ(reg.value("t.erat.miss"), warm_misses)
          << "steady-state ERAT misses at page size 2^" << shift
          << " with a confined " << pages << "-page trace";
    }
    // Reach arithmetic: strictly larger pages, strictly more reach.
    std::uint64_t prev_reach = 0;
    for (int shift = base_shift; shift <= 24; ++shift) {
      const std::uint64_t reach =
          cfg.erat_entries * (std::uint64_t{1} << shift);
      EXPECT_GT(reach, prev_reach);
      prev_reach = reach;
    }
  }
}

// ---------------------------------------------------------------------------

TEST(NocProperty, RouteLatencySymmetric) {
  // The link table is symmetric (every X-bus/A-bus entry carries the
  // same latency both ways), so the min-latency route metric must be
  // symmetric for every chip pair of every audit-clean machine.
  P8_PROP(gen, 200, 0x0c0ffee0) {
    const sim::MachineSpec spec = random_spec(gen);
    if (!spec.audit().ok()) continue;
    const sim::Machine machine = spec.machine();
    const int chips = spec.system.total_chips();
    for (int probe = 0; probe < 8; ++probe) {
      const int a = gen.int_range(0, chips - 1);
      const int b = gen.int_range(0, chips - 1);
      EXPECT_DOUBLE_EQ(machine.noc().memory_latency_ns(a, b),
                       machine.noc().memory_latency_ns(b, a))
          << "chips " << a << " <-> " << b << " of\n"
          << spec.to_json();
    }
  }
}

}  // namespace
