// Tests for the event-driven traffic simulator, including cross-checks
// against the analytic bandwidth model.
#include <gtest/gtest.h>

#include <algorithm>

#include "arch/spec.hpp"
#include "sim/machine/traffic_sim.hpp"
#include "sim/mem/bandwidth.hpp"

namespace p8::sim {
namespace {

TrafficConfig e870_cfg() { return TrafficConfig::from_spec(arch::e870()); }

TEST(TrafficSim, FromSpecRates) {
  const auto c = e870_cfg();
  EXPECT_EQ(c.chips, 8);
  EXPECT_NEAR(c.read_link_gbs, 8 * 19.2 * 0.93, 1e-9);
  EXPECT_NEAR(c.write_link_gbs, 8 * 9.6 * 0.958, 1e-9);
  EXPECT_DOUBLE_EQ(c.line_bytes, 128.0);
}

TEST(TrafficSim, UnloadedLatencyIsBase) {
  auto cfg = e870_cfg();
  const TrafficResult r = simulate_traffic(cfg, {{0, 1, 0.0, false}});
  EXPECT_NEAR(r.mean_latency_ns, cfg.base_latency_ns, 1.0);
}

TEST(TrafficSim, LittlesLawAtLowLoad) {
  // One actor, mlp outstanding: throughput = mlp * line / latency.
  auto cfg = e870_cfg();
  cfg.core_port_gbs = 0.0;  // no port cap for this check
  for (const int mlp : {1, 2, 4}) {
    const TrafficResult r =
        simulate_traffic(cfg, {{0, mlp, 0.0, false}});
    const double expected = mlp * cfg.line_bytes / cfg.base_latency_ns;
    EXPECT_NEAR(r.total_gbs, expected, expected * 0.03) << "mlp " << mlp;
  }
}

TEST(TrafficSim, CorePortCapsSingleActor) {
  const auto cfg = e870_cfg();
  const TrafficResult r = simulate_traffic(cfg, {{0, 64, 0.0, false}});
  EXPECT_NEAR(r.total_gbs, cfg.core_port_gbs, cfg.core_port_gbs * 0.03);
}

TEST(TrafficSim, ReadLinkSaturates) {
  auto cfg = e870_cfg();
  cfg.core_port_gbs = 0.0;
  std::vector<ActorSpec> actors(8, ActorSpec{0, 64, 0.0, false});
  const TrafficResult r = simulate_traffic(cfg, actors);
  EXPECT_NEAR(r.total_gbs, cfg.read_link_gbs, cfg.read_link_gbs * 0.03);
}

TEST(TrafficSim, WriteOnlyDrainsThroughWriteLink) {
  auto cfg = e870_cfg();
  cfg.core_port_gbs = 0.0;
  std::vector<ActorSpec> actors(8, ActorSpec{0, 64, 1.0, false});
  const TrafficResult r = simulate_traffic(cfg, actors);
  EXPECT_NEAR(r.total_gbs, cfg.write_link_gbs, cfg.write_link_gbs * 0.03);
  EXPECT_NEAR(r.read_gbs, 0.0, 1e-9);
}

TEST(TrafficSim, MixedTrafficHonorsWriteFraction) {
  const auto cfg = e870_cfg();
  std::vector<ActorSpec> actors(4, ActorSpec{0, 8, 1.0 / 3.0, false});
  const TrafficResult r = simulate_traffic(cfg, actors);
  EXPECT_NEAR(r.write_gbs / r.total_gbs, 1.0 / 3.0, 0.02);
}

TEST(TrafficSim, RandomBankBoundsPerChip) {
  auto cfg = e870_cfg();
  cfg.core_port_gbs = 0.0;
  std::vector<ActorSpec> actors(8, ActorSpec{0, 32, 0.0, true});
  const TrafficResult r = simulate_traffic(cfg, actors);
  EXPECT_NEAR(r.total_gbs, cfg.random_bank_gbs,
              cfg.random_bank_gbs * 0.03);
}

TEST(TrafficSim, ChipsScaleIndependently) {
  const auto cfg = e870_cfg();
  std::vector<ActorSpec> one_chip(8, ActorSpec{0, 24, 0.0, true});
  std::vector<ActorSpec> two_chips = one_chip;
  for (auto spec : one_chip) {
    spec.chip = 1;
    two_chips.push_back(spec);
  }
  const double bw1 = simulate_traffic(cfg, one_chip).total_gbs;
  const double bw2 = simulate_traffic(cfg, two_chips).total_gbs;
  EXPECT_NEAR(bw2, 2.0 * bw1, bw1 * 0.05);
}

TEST(TrafficSim, QueueingInflatesLatencyAtSaturation) {
  const auto cfg = e870_cfg();
  const TrafficResult light = simulate_traffic(cfg, {{0, 1, 0.0, true}});
  std::vector<ActorSpec> heavy(8, ActorSpec{0, 32, 0.0, true});
  const TrafficResult loaded = simulate_traffic(cfg, heavy);
  EXPECT_GT(loaded.mean_latency_ns, 2.0 * light.mean_latency_ns);
}

TEST(TrafficSim, Deterministic) {
  const auto cfg = e870_cfg();
  std::vector<ActorSpec> actors(6, ActorSpec{0, 7, 0.25, true});
  const TrafficResult a = simulate_traffic(cfg, actors);
  const TrafficResult b = simulate_traffic(cfg, actors);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_DOUBLE_EQ(a.total_gbs, b.total_gbs);
}

TEST(TrafficSim, Validation) {
  const auto cfg = e870_cfg();
  EXPECT_THROW(simulate_traffic(cfg, {}), std::invalid_argument);
  EXPECT_THROW(simulate_traffic(cfg, {{9, 1, 0.0, false}}),
               std::invalid_argument);
  EXPECT_THROW(simulate_traffic(cfg, {{0, 0, 0.0, false}}),
               std::invalid_argument);
  EXPECT_THROW(simulate_traffic(cfg, {{0, 1, 1.5, false}}),
               std::invalid_argument);
}

// -------------------------------------------- cross-model validation -------

TEST(TrafficSimVsAnalytic, RandomAccessCeilingAgrees) {
  // Both models must land on the paper's ~500 GB/s (41% of read peak).
  const auto cfg = e870_cfg();
  std::vector<ActorSpec> actors;
  for (int chip = 0; chip < 8; ++chip)
    for (int core = 0; core < 8; ++core)
      actors.push_back({chip, 32, 0.0, true});
  const double event = simulate_traffic(cfg, actors).total_gbs;
  const MemoryBandwidthModel analytic(arch::e870());
  const double formula = analytic.random_gbs(8, 8, 8, 16);
  EXPECT_NEAR(event, formula, formula * 0.05);
  EXPECT_NEAR(event, 500.0, 30.0);
}

TEST(TrafficSimVsAnalytic, SingleCoreStreamAgrees) {
  const auto cfg = e870_cfg();
  const double event =
      simulate_traffic(cfg, {{0, 24, 1.0 / 3.0, false}}).total_gbs;
  const MemoryBandwidthModel analytic(arch::e870());
  const double formula = analytic.stream_gbs(1, 1, 8, {2, 1});
  EXPECT_NEAR(event, formula, formula * 0.05);
}

TEST(TrafficSimVsAnalytic, EventSimBracketsMixedStreamsFromAbove) {
  // The event simulator has no read/write turnaround interference, so
  // on mixed full-system traffic it should land ABOVE the analytic
  // figure (which models the interference) but within ~25%.
  const auto cfg = e870_cfg();
  std::vector<ActorSpec> actors;
  for (int chip = 0; chip < 8; ++chip)
    for (int core = 0; core < 8; ++core)
      actors.push_back({chip, 24, 1.0 / 3.0, false});
  const double event = simulate_traffic(cfg, actors).total_gbs;
  const MemoryBandwidthModel analytic(arch::e870());
  const double formula = analytic.system_stream_gbs({2, 1});
  EXPECT_GT(event, formula);
  EXPECT_LT(event, formula * 1.25);
}

}  // namespace
}  // namespace p8::sim
