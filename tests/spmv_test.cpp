// Tests for the SpMV library: the CSR kernel, the NUMA-style plan and
// the two-phase tiled graph SpMV.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "graph/matrices.hpp"
#include "graph/rmat.hpp"
#include "spmv/csr_spmv.hpp"
#include "spmv/graph_spmv.hpp"

namespace p8::spmv {
namespace {

std::vector<double> random_vector(std::size_t n, std::uint64_t seed) {
  std::vector<double> x(n);
  common::Xoshiro256 rng(seed);
  for (auto& v : x) v = rng.uniform() * 2.0 - 1.0;
  return x;
}

double max_rel_diff(std::span<const double> a, std::span<const double> b) {
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double scale = std::max({std::abs(a[i]), std::abs(b[i]), 1.0});
    worst = std::max(worst, std::abs(a[i] - b[i]) / scale);
  }
  return worst;
}

TEST(CsrSpmv, KnownSmallSystem) {
  // [1 2; 0 3] * [1, 2] = [5, 6]
  const graph::CsrMatrix a = graph::CsrMatrix::from_triplets(
      2, 2, {{0, 0, 1.0}, {0, 1, 2.0}, {1, 1, 3.0}});
  std::vector<double> x{1.0, 2.0};
  std::vector<double> y(2);
  spmv_serial(a, x, y);
  EXPECT_DOUBLE_EQ(y[0], 5.0);
  EXPECT_DOUBLE_EQ(y[1], 6.0);
}

TEST(CsrSpmv, EmptyRowsGiveZero) {
  const graph::CsrMatrix a =
      graph::CsrMatrix::from_triplets(3, 3, {{0, 0, 1.0}});
  std::vector<double> x{1.0, 1.0, 1.0};
  std::vector<double> y(3, 99.0);
  spmv_serial(a, x, y);
  EXPECT_DOUBLE_EQ(y[1], 0.0);
  EXPECT_DOUBLE_EQ(y[2], 0.0);
}

TEST(CsrSpmv, ParallelMatchesSerial) {
  const graph::CsrMatrix a = graph::random_uniform(3000, 7, 5);
  const auto x = random_vector(a.cols(), 1);
  std::vector<double> ys(a.rows());
  std::vector<double> yp(a.rows());
  spmv_serial(a, x, ys);
  common::ThreadPool pool(4);
  spmv(a, x, yp, pool);
  EXPECT_LT(max_rel_diff(ys, yp), 1e-12);
}

TEST(CsrSpmv, RectangularMatrix) {
  const graph::CsrMatrix a = graph::lp_rectangular(256, 2048, 6, 3);
  const auto x = random_vector(a.cols(), 2);
  std::vector<double> ys(a.rows());
  std::vector<double> yp(a.rows());
  spmv_serial(a, x, ys);
  common::ThreadPool pool(3);
  spmv(a, x, yp, pool);
  EXPECT_LT(max_rel_diff(ys, yp), 1e-12);
}

TEST(CsrSpmv, ShortVectorsRejected) {
  const graph::CsrMatrix a = graph::random_uniform(10, 2, 1);
  std::vector<double> x(5);
  std::vector<double> y(10);
  EXPECT_THROW(spmv_serial(a, x, y), std::invalid_argument);
}

TEST(CsrSpmv, PlanBalancesSkewedMatrix) {
  // Power-law rows: naive row-count split would be terrible; the
  // nnz-balanced plan keeps the heaviest partition under 2x ideal.
  const graph::CsrMatrix a = graph::power_law(20000, 6.0, 2.1, 11);
  const CsrSpmvPlan plan(a, 8);
  EXPECT_LT(plan.imbalance(a), 2.0);
}

TEST(CsrSpmv, PlanCoversAllRows) {
  const graph::CsrMatrix a = graph::random_uniform(1000, 3, 2);
  const CsrSpmvPlan plan(a, 7);
  std::size_t prev = 0;
  for (std::size_t t = 0; t < plan.threads(); ++t) {
    const auto [lo, hi] = plan.row_range(t);
    EXPECT_EQ(lo, prev);
    prev = hi;
  }
  EXPECT_EQ(prev, 1000u);
}

TEST(CsrSpmv, PlanPoolMismatchRejected) {
  const graph::CsrMatrix a = graph::random_uniform(100, 3, 2);
  const CsrSpmvPlan plan(a, 2);
  common::ThreadPool pool(3);
  const auto x = random_vector(100, 1);
  std::vector<double> y(100);
  EXPECT_THROW(spmv(a, x, y, pool, plan), std::invalid_argument);
}

TEST(CsrSpmv, FlopsConvention) {
  const graph::CsrMatrix a = graph::random_uniform(100, 4, 2);
  EXPECT_DOUBLE_EQ(spmv_flops(a), 2.0 * a.nnz());
}

// ---------------------------------------------------------------- tiled ----

class TiledVsSerial : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(TiledVsSerial, MatchesSerialAtAnyBlockSize) {
  const std::uint32_t block = GetParam();
  const graph::CsrMatrix a = graph::rmat_adjacency([] {
    graph::RmatOptions o;
    o.scale = 11;
    o.edge_factor = 8;
    return o;
  }());
  const auto x = random_vector(a.cols(), 9);
  std::vector<double> ys(a.rows());
  spmv_serial(a, x, ys);

  TiledOptions opts;
  opts.col_block = block;
  opts.row_block = block;
  TiledSpmv tiled(a, opts);
  std::vector<double> yt(a.rows());
  common::ThreadPool pool(4);
  tiled.execute(x, yt, pool);
  EXPECT_LT(max_rel_diff(ys, yt), 1e-12) << "block " << block;
}

INSTANTIATE_TEST_SUITE_P(Blocks, TiledVsSerial,
                         ::testing::Values(64, 256, 1024, 4096, 1u << 20));

TEST(TiledSpmv, PreservesNnz) {
  const graph::CsrMatrix a = graph::random_uniform(5000, 6, 4);
  TiledSpmv tiled(a);
  EXPECT_EQ(tiled.nnz(), a.nnz());
}

TEST(TiledSpmv, TileGeometry) {
  const graph::CsrMatrix a = graph::random_uniform(10000, 4, 4);
  TiledOptions o;
  o.col_block = 2500;
  o.row_block = 5000;
  TiledSpmv tiled(a, o);
  EXPECT_EQ(tiled.col_blocks(), 4u);
  EXPECT_EQ(tiled.row_blocks(), 2u);
  EXPECT_NEAR(tiled.mean_tile_nnz(), 40000.0 / 8.0, 1.0);
}

TEST(TiledSpmv, MeanTileNnzShrinksWithScale) {
  // The paper's explanation of Fig. 12's decay: fixed average degree,
  // growing dimension => emptier tiles.
  graph::RmatOptions o;
  o.edge_factor = 8;
  o.scale = 10;
  TiledOptions t;
  t.col_block = 512;
  t.row_block = 512;
  const TiledSpmv small(graph::rmat_adjacency(o), t);
  o.scale = 13;
  const TiledSpmv large(graph::rmat_adjacency(o), t);
  EXPECT_GT(small.mean_tile_nnz(), large.mean_tile_nnz());
}

TEST(TiledSpmv, RepeatedExecutionsAreConsistent) {
  const graph::CsrMatrix a = graph::random_uniform(2000, 5, 8);
  TiledSpmv tiled(a);
  const auto x = random_vector(a.cols(), 3);
  std::vector<double> y1(a.rows());
  std::vector<double> y2(a.rows());
  common::ThreadPool pool(2);
  tiled.execute(x, y1, pool);
  tiled.execute(x, y2, pool);
  EXPECT_EQ(y1, y2);
}

TEST(TiledSpmv, RectangularInput) {
  const graph::CsrMatrix a = graph::lp_rectangular(512, 4096, 8, 6);
  const auto x = random_vector(a.cols(), 4);
  std::vector<double> ys(a.rows());
  spmv_serial(a, x, ys);
  TiledSpmv tiled(a);
  std::vector<double> yt(a.rows());
  common::ThreadPool pool(2);
  tiled.execute(x, yt, pool);
  EXPECT_LT(max_rel_diff(ys, yt), 1e-12);
}

TEST(TiledSpmv, EmptyMatrix) {
  const graph::CsrMatrix a = graph::CsrMatrix::from_triplets(100, 100, {});
  TiledSpmv tiled(a);
  std::vector<double> x(100, 1.0);
  std::vector<double> y(100, 5.0);
  common::ThreadPool pool(2);
  tiled.execute(x, y, pool);
  for (const double v : y) EXPECT_DOUBLE_EQ(v, 0.0);
}

}  // namespace
}  // namespace p8::spmv
