// Determinism tests for the parallel sweep engine: SweepRunner output
// must be bit-identical to the sequential loop for the Fig. 2 and
// Fig. 7 sweep configurations, and the ThreadPool fork-join primitives
// it builds on must propagate exceptions and combine reductions in
// worker order.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/threading.hpp"
#include "common/units.hpp"
#include "arch/spec.hpp"
#include "sim/audit.hpp"
#include "sim/machine/sweep.hpp"
#include "ubench/workloads.hpp"

namespace p8 {
namespace {

TEST(Sweep, Fig2ScanBitIdenticalToSequential) {
  const sim::Machine machine = sim::Machine(arch::e870());
  // A reduced Fig. 2 grid (16 KB .. 4 MB) covering L1/L2/L3 and the
  // ERAT spike region, for both page sizes.
  std::vector<std::uint64_t> sizes;
  for (std::uint64_t ws = common::kib(16); ws <= common::mib(4); ws += ws / 2)
    sizes.push_back(ws);

  for (const std::uint64_t page :
       {std::uint64_t{64} * 1024, std::uint64_t{16} << 20}) {
    const auto seq =
        ubench::memory_latency_scan(machine, sizes, page, /*dscr=*/1);
    sim::SweepRunner runner(4);
    const auto par =
        ubench::memory_latency_scan(machine, sizes, page, /*dscr=*/1, runner);
    ASSERT_EQ(seq.size(), par.size());
    for (std::size_t i = 0; i < seq.size(); ++i) {
      EXPECT_EQ(seq[i].working_set_bytes, par[i].working_set_bytes);
      // Bit-identical, not approximately equal.
      EXPECT_EQ(seq[i].latency_ns, par[i].latency_ns) << "point " << i;
    }
  }
}

TEST(Sweep, Fig7StrideGridBitIdenticalToSequential) {
  const sim::Machine machine = sim::Machine(arch::e870());
  auto point = [&](std::size_t i) {
    ubench::StrideOptions opt;
    opt.dscr = 2 + static_cast<int>(i / 2);
    opt.stride_n = (i % 2) != 0;
    opt.accesses = 20000;  // reduced grid, same structure as the bench
    return ubench::stride_latency_ns(machine, opt);
  };

  std::vector<double> seq;
  for (std::size_t i = 0; i < 12; ++i) seq.push_back(point(i));

  sim::SweepRunner runner(3);
  const auto par = runner.run(12, point);
  ASSERT_EQ(par.size(), seq.size());
  for (std::size_t i = 0; i < seq.size(); ++i)
    EXPECT_EQ(seq[i], par[i]) << "point " << i;
}

TEST(Sweep, RepeatedRunsAreIdentical) {
  const sim::Machine machine = sim::Machine(arch::e870());
  auto point = [&](std::size_t i) {
    ubench::ChaseOptions opt;
    opt.working_set_bytes = common::kib(64) << i;
    return ubench::chase_latency_ns(machine, opt);
  };
  sim::SweepRunner a(4);
  sim::SweepRunner b(2);
  EXPECT_EQ(a.run(4, point), b.run(4, point));
}

TEST(Sweep, MapPassesGridValuesInOrder) {
  sim::SweepRunner runner(4);
  const std::vector<int> grid = {3, 1, 4, 1, 5, 9, 2, 6};
  const auto out = runner.map(
      grid, [](int v, std::size_t i) { return v * 10 + static_cast<int>(i); });
  ASSERT_EQ(out.size(), grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i)
    EXPECT_EQ(out[i], grid[i] * 10 + static_cast<int>(i));
}

TEST(Sweep, BorrowedPoolIsShared) {
  common::ThreadPool pool(2);
  sim::SweepRunner runner(pool);
  EXPECT_EQ(runner.threads(), 2u);
  EXPECT_EQ(&runner.pool(), &pool);
}

TEST(Sweep, FailedAuditGatesEveryEntryPoint) {
  sim::AuditReport failed;
  failed.add(sim::AuditSeverity::kError, "hierarchy.latency-order",
             "inverted for the test");

  sim::SweepRunner runner(2);
  runner.gate_on_audit(failed);
  auto point = [](std::size_t i) { return static_cast<double>(i); };
  EXPECT_THROW(runner.run(4, point), std::runtime_error);
  // map() and run_counted() funnel through the same gate.
  const std::vector<int> grid = {1, 2, 3};
  EXPECT_THROW(runner.map(grid, [](int v, std::size_t) { return v; }),
               std::runtime_error);

  // The thrown message must carry the diagnostics, so the user sees
  // *why* the sweep refused to start.
  try {
    runner.run(1, point);
    FAIL() << "gated run() did not throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("hierarchy.latency-order"),
              std::string::npos);
  }
}

TEST(Sweep, WaiveAuditClearsTheGate) {
  sim::AuditReport failed;
  failed.add(sim::AuditSeverity::kError, "mem.link-ratio", "1:1 for the test");
  sim::SweepRunner runner(2);
  runner.gate_on_audit(failed);
  runner.waive_audit();
  auto point = [](std::size_t i) { return static_cast<double>(i); };
  EXPECT_EQ(runner.run(3, point), (std::vector<double>{0.0, 1.0, 2.0}));
}

TEST(Sweep, CleanAuditReplacesAFailedOne) {
  sim::AuditReport failed;
  failed.add(sim::AuditSeverity::kError, "noc.latency", "negative");
  sim::SweepRunner runner(2);
  runner.gate_on_audit(failed);
  runner.gate_on_audit(sim::AuditReport{});  // re-audit came back clean
  auto point = [](std::size_t i) { return static_cast<double>(i); };
  EXPECT_NO_THROW(runner.run(2, point));
}

TEST(Sweep, WarningOnlyAuditDoesNotGate) {
  sim::AuditReport warnings;
  warnings.add(sim::AuditSeverity::kWarning, "system.clock", "10 GHz");
  sim::SweepRunner runner(2);
  runner.gate_on_audit(warnings);
  auto point = [](std::size_t i) { return static_cast<double>(i); };
  EXPECT_NO_THROW(runner.run(2, point));
}

TEST(ThreadPool, ParallelForPropagatesExceptions) {
  common::ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(0, 100,
                                 [](std::size_t i) {
                                   if (i == 37)
                                     throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
  // The pool must stay usable after a throwing region.
  std::atomic<int> count{0};
  pool.parallel_for(0, 100, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, DynamicForPropagatesWorkerExceptions) {
  common::ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for_dynamic(0, 1000, 1,
                                         [](std::size_t i) {
                                           if (i == 999)
                                             throw std::invalid_argument("x");
                                         }),
               std::invalid_argument);
}

TEST(ThreadPool, ReduceCombinesInWorkerOrder) {
  // A non-commutative reduction (sequence concatenation): worker-order
  // combining must reproduce the sequential order exactly, every run.
  common::ThreadPool pool(4);
  const std::size_t n = 1000;
  for (int rep = 0; rep < 3; ++rep) {
    const auto out = pool.parallel_reduce<std::vector<std::size_t>>(
        0, n, [] { return std::vector<std::size_t>{}; },
        [](std::vector<std::size_t>& acc, std::size_t i) { acc.push_back(i); },
        [](std::vector<std::size_t>& into,
           const std::vector<std::size_t>& part) {
          into.insert(into.end(), part.begin(), part.end());
        });
    std::vector<std::size_t> expected(n);
    std::iota(expected.begin(), expected.end(), 0u);
    EXPECT_EQ(out, expected);
  }
}

TEST(ThreadPool, ReduceFloatSumIsRunToRunDeterministic) {
  common::ThreadPool pool(3);
  auto sum = [&] {
    return pool.parallel_reduce<double>(
        0, 10000, [] { return 0.0; },
        [](double& acc, std::size_t i) {
          acc += 1.0 / static_cast<double>(i + 1);
        },
        [](double& into, const double& part) { into += part; });
  };
  const double first = sum();
  for (int rep = 0; rep < 5; ++rep) EXPECT_EQ(sum(), first);
}

}  // namespace
}  // namespace p8
