// Tests for the work-stealing task-graph engine: dependency edges are
// honoured at every pool width, cycles are rejected with a structured
// error before anything runs, a throwing task cancels its dependents
// (and only its dependents), the per-task timeline is recorded and
// renders to schema-stable JSON, and the SweepRunner port on top of
// the engine keeps its counter-merge determinism bit-identical to the
// serial loop across 1/2/4/7 workers.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "arch/spec.hpp"
#include "common/json.hpp"
#include "common/taskgraph.hpp"
#include "common/threading.hpp"
#include "common/units.hpp"
#include "proptest.hpp"
#include "sim/counters.hpp"
#include "sim/machine/machine.hpp"
#include "sim/machine/sweep.hpp"
#include "ubench/workloads.hpp"

namespace p8 {
namespace {

TEST(TaskGraph, DiamondRunsInTopologicalOrder) {
  for (const std::size_t workers : {std::size_t{1}, std::size_t{3}}) {
    common::TaskGraph graph;
    std::mutex mutex;
    std::vector<std::string> order;
    auto log = [&](const char* name) {
      return [&order, &mutex, name] {
        const std::lock_guard<std::mutex> lock(mutex);
        order.emplace_back(name);
      };
    };
    const common::TaskId a = graph.add("a", log("a"));
    const common::TaskId b = graph.add("b", log("b"), {a});
    const common::TaskId c = graph.add("c", log("c"), {a});
    graph.add("d", log("d"), {b, c});

    common::ThreadPool pool(workers);
    common::TaskEngine engine(pool);
    engine.run(graph);

    ASSERT_EQ(order.size(), 4u);
    EXPECT_EQ(order.front(), "a");
    EXPECT_EQ(order.back(), "d");
  }
}

TEST(TaskGraph, EveryTaskRunsExactlyOnce) {
  common::TaskGraph graph;
  const std::size_t n = 200;
  std::vector<std::atomic<int>> runs(n);
  for (std::size_t i = 0; i < n; ++i) runs[i].store(0);
  std::vector<common::TaskId> ids;
  for (std::size_t i = 0; i < n; ++i) {
    if (i < 4)
      ids.push_back(graph.add("t" + std::to_string(i),
                              [&runs, i] { runs[i].fetch_add(1); }));
    else
      // A shallow fan: each task depends on one earlier task, so the
      // ready set stays wide and steals are possible.
      ids.push_back(graph.add(
          "t" + std::to_string(i), [&runs, i] { runs[i].fetch_add(1); },
          {ids[i % 4]}));
  }
  common::ThreadPool pool(4);
  common::TaskEngine engine(pool);
  engine.run(graph);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(runs[i].load(), 1) << i;
  EXPECT_EQ(engine.timeline().size(), n);
}

TEST(TaskGraph, CycleIsRejectedWithStructuredError) {
  common::TaskGraph graph;
  std::atomic<int> ran{0};
  const common::TaskId a = graph.add("ring.a", [&] { ++ran; });
  const common::TaskId b = graph.add("ring.b", [&] { ++ran; }, {a});
  const common::TaskId c = graph.add("ring.c", [&] { ++ran; }, {b});
  graph.add_dependency(a, c);  // closes ring.a -> ring.b -> ring.c -> ring.a
  graph.add("innocent", [&] { ++ran; });

  common::ThreadPool pool(2);
  common::TaskEngine engine(pool);
  try {
    engine.run(graph);
    FAIL() << "cyclic graph did not throw";
  } catch (const common::TaskGraphCycleError& e) {
    // The structured error names the tasks on the cycle, in edge order.
    EXPECT_EQ(e.cycle().size(), 3u);
    for (const char* name : {"ring.a", "ring.b", "ring.c"}) {
      bool found = false;
      for (const std::string& member : e.cycle()) found |= member == name;
      EXPECT_TRUE(found) << name << " missing from cycle()";
    }
    EXPECT_NE(std::string(e.what()).find("dependency cycle"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("ring.b"), std::string::npos);
  }
  // Validation failed before execution: no body ran, not even the
  // innocent off-cycle task.
  EXPECT_EQ(ran.load(), 0);
}

TEST(TaskGraph, SelfDependencyIsACycle) {
  common::TaskGraph graph;
  const common::TaskId t = graph.add("selfish", [] {});
  graph.add_dependency(t, t);
  common::ThreadPool pool(1);
  common::TaskEngine engine(pool);
  EXPECT_THROW(engine.run(graph), common::TaskGraphCycleError);
}

TEST(TaskGraph, InvalidDependencyIdsAreRejected) {
  common::TaskGraph graph;
  const common::TaskId t = graph.add("only", [] {});
  EXPECT_THROW(graph.add_dependency(t, t + 1), std::invalid_argument);
  EXPECT_THROW(graph.add_dependency(t + 1, t), std::invalid_argument);
}

TEST(TaskGraph, ExceptionCancelsDependentsButNotSiblings) {
  for (const std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
    common::TaskGraph graph;
    std::atomic<bool> b_ran{false};
    std::atomic<bool> c_ran{false};
    std::atomic<bool> d_ran{false};
    const common::TaskId a =
        graph.add("a.throws", [] { throw std::runtime_error("boom"); });
    const common::TaskId b =
        graph.add("b.dependent", [&] { b_ran = true; }, {a});
    graph.add("c.grandchild", [&] { c_ran = true; }, {b});
    graph.add("d.sibling", [&] { d_ran = true; });

    common::ThreadPool pool(workers);
    common::TaskEngine engine(pool);
    try {
      engine.run(graph);
      FAIL() << "task exception was swallowed";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "boom");
    }
    // Cancellation follows the edges: the failed task's chain is
    // skipped, the unrelated sibling still runs.
    EXPECT_FALSE(b_ran.load());
    EXPECT_FALSE(c_ran.load());
    EXPECT_TRUE(d_ran.load());

    ASSERT_EQ(engine.timeline().size(), 4u);
    EXPECT_FALSE(engine.timeline()[0].cancelled);
    EXPECT_TRUE(engine.timeline()[1].cancelled);
    EXPECT_TRUE(engine.timeline()[2].cancelled);
    EXPECT_FALSE(engine.timeline()[3].cancelled);
  }
}

TEST(TaskGraph, EngineIsReusableAfterFailureAndAcrossRuns) {
  common::ThreadPool pool(2);
  common::TaskEngine engine(pool);

  common::TaskGraph bad;
  bad.add("explode", [] { throw std::logic_error("x"); });
  EXPECT_THROW(engine.run(bad), std::logic_error);

  common::TaskGraph good;
  std::atomic<int> sum{0};
  for (int i = 0; i < 10; ++i)
    good.add("add" + std::to_string(i), [&sum, i] { sum += i; });
  engine.run(good);
  EXPECT_EQ(sum.load(), 45);
  EXPECT_EQ(engine.timeline().size(), 10u);

  common::TaskGraph empty;
  engine.run(empty);  // zero tasks is a no-op, not an error
  EXPECT_TRUE(engine.timeline().empty());
}

TEST(TaskGraph, TimelineRecordsNamesWorkersAndSpans) {
  common::TaskGraph graph;
  const common::TaskId a = graph.add("first", [] {});
  graph.add("second", [] {}, {a});
  common::ThreadPool pool(2);
  common::TaskEngine engine(pool);
  engine.run(graph);

  const auto& timeline = engine.timeline();
  ASSERT_EQ(timeline.size(), 2u);
  EXPECT_EQ(timeline[0].name, "first");
  EXPECT_EQ(timeline[1].name, "second");
  for (const common::TaskRecord& r : timeline) {
    EXPECT_LT(r.worker, 2u);
    EXPECT_GE(r.start_s, 0.0);
    EXPECT_GE(r.end_s, r.start_s);
    EXPECT_FALSE(r.cancelled);
  }
  // Dependency spans cannot overlap backwards: "second" starts at or
  // after "first" ended.
  EXPECT_GE(timeline[1].start_s, timeline[0].end_s);
}

TEST(TaskGraph, TimelineJsonMatchesSchema) {
  common::TaskGraph graph;
  const common::TaskId a = graph.add("scan \"quoted\"", [] {});
  graph.add("merge", [] {}, {a});
  common::ThreadPool pool(3);
  common::TaskEngine engine(pool);
  engine.run(graph);

  const common::Json doc = common::Json::parse(engine.timeline_json("unit"));
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.find("bench")->as_string("bench"), "unit");
  EXPECT_EQ(doc.find("workers")->as_number("workers"), 3.0);
  EXPECT_EQ(doc.find("tasks")->as_number("tasks"), 2.0);
  ASSERT_NE(doc.find("steals"), nullptr);
  EXPECT_GE(doc.find("wall_s")->as_number("wall_s"), 0.0);
  const common::Json* timeline = doc.find("timeline");
  ASSERT_NE(timeline, nullptr);
  ASSERT_TRUE(timeline->is_array());
  ASSERT_EQ(timeline->array.size(), 2u);
  for (const common::Json& entry : timeline->array) {
    ASSERT_TRUE(entry.is_object());
    for (const char* key :
         {"name", "worker", "start_s", "end_s", "stolen", "cancelled"})
      EXPECT_NE(entry.find(key), nullptr) << key;
    EXPECT_GE(entry.find("end_s")->as_number("end_s"),
              entry.find("start_s")->as_number("start_s"));
  }
  EXPECT_EQ(timeline->array[0].find("name")->as_string("name"),
            "scan \"quoted\"");
}

TEST(TaskGraphProperty, RandomDagsCompleteAndRespectDependencies) {
  P8_PROP(gen, 40, 0x7a5cfeed) {
    const std::size_t n = gen.range(1, 48);
    const std::size_t workers =
        gen.pick({std::size_t{1}, std::size_t{2}, std::size_t{4},
                  std::size_t{7}});
    common::TaskGraph graph;
    std::vector<std::atomic<bool>> done(n);
    for (std::size_t i = 0; i < n; ++i) done[i].store(false);
    std::atomic<bool> dep_violated{false};
    std::vector<common::TaskId> ids;
    for (std::size_t i = 0; i < n; ++i) {
      // Edges only from lower to higher index — acyclic by
      // construction, arbitrary fan-in/fan-out.
      std::vector<common::TaskId> deps;
      for (std::size_t j = 0; j < i; ++j)
        if (gen.chance(0.12)) deps.push_back(ids[j]);
      ids.push_back(graph.add(
          "p" + std::to_string(i),
          [&done, &dep_violated, deps, i] {
            for (const common::TaskId d : deps)
              if (!done[d].load(std::memory_order_acquire))
                dep_violated.store(true);
            done[i].store(true, std::memory_order_release);
          },
          deps));
    }
    common::ThreadPool pool(workers);
    common::TaskEngine engine(pool);
    engine.run(graph);
    EXPECT_FALSE(dep_violated.load()) << "a task ran before a dependency";
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_TRUE(done[i].load()) << "task " << i << " never ran";
    EXPECT_EQ(engine.timeline().size(), n);
  }
}

// ---------------------------------------------------------------------------
// The SweepRunner port: same results, same merged counters, any width.

ubench::ChaseOptions small_chase(std::size_t i) {
  ubench::ChaseOptions opt;
  opt.working_set_bytes = common::kib(32) << (i % 4);
  opt.warm_accesses = 4096;
  opt.measure_accesses = 20000;
  opt.seed = 42 + i;
  return opt;
}

TEST(TaskGraphSweep, CounterMergeBitIdenticalAcross1_2_4_7Workers) {
  const sim::Machine machine = sim::Machine(arch::e870());
  const std::size_t points = 9;

  // Serial reference: private registries merged in submission order.
  sim::CounterRegistry serial;
  std::vector<double> serial_lat;
  for (std::size_t i = 0; i < points; ++i) {
    sim::CounterRegistry local;
    ubench::ChaseOptions opt = small_chase(i);
    opt.counters = &local;
    serial_lat.push_back(ubench::chase_latency_ns(machine, opt));
    serial.merge(local);
  }

  for (const std::size_t workers :
       {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{7}}) {
    sim::SweepRunner runner(workers);
    sim::CounterRegistry merged;
    const auto lat = runner.run_counted(
        points, &merged, [&](std::size_t i, sim::CounterRegistry* registry) {
          ubench::ChaseOptions opt = small_chase(i);
          opt.counters = registry;
          return ubench::chase_latency_ns(machine, opt);
        });
    ASSERT_EQ(lat.size(), serial_lat.size());
    for (std::size_t i = 0; i < points; ++i)
      EXPECT_EQ(lat[i], serial_lat[i]) << "point " << i << ", " << workers
                                       << " workers";
    // Bit-identical merged counters, snapshot and rendered form.
    EXPECT_EQ(merged.snapshot(), serial.snapshot()) << workers << " workers";
    EXPECT_EQ(merged.to_csv(), serial.to_csv()) << workers << " workers";
  }
}

TEST(TaskGraphSweep, RunnerRecordsATimelinePerSweep) {
  sim::SweepRunner runner(2);
  runner.set_task_label("unit.point");
  const auto out =
      runner.run(5, [](std::size_t i) { return static_cast<double>(i * i); });
  EXPECT_EQ(out, (std::vector<double>{0.0, 1.0, 4.0, 9.0, 16.0}));
  ASSERT_EQ(runner.last_timeline().size(), 5u);
  EXPECT_EQ(runner.last_timeline()[0].name, "unit.point#0");
  EXPECT_EQ(runner.last_timeline()[4].name, "unit.point#4");
}

}  // namespace
}  // namespace p8
