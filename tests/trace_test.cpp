// Tests for the binary trace format: encode/decode round trips across
// chunk sizes, the hostile-input rejection matrix (every malformed
// file must raise a TraceError with a reason and byte offset, never
// replay short), and the out-of-core equivalence property — a stream
// written to disk and replayed chunk-by-chunk produces bit-identical
// BatchStats, clock and counters to replaying the same stream in
// memory, at chunk size 1, a non-divisor size and a huge size.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <numeric>
#include <string>
#include <vector>

#include "arch/spec.hpp"
#include "proptest.hpp"
#include "sim/counters.hpp"
#include "sim/machine/machine.hpp"
#include "trace/reader.hpp"
#include "trace/replay.hpp"
#include "trace/writer.hpp"
#include "ubench/workloads.hpp"

namespace p8::trace {
namespace {

const sim::Machine& machine() {
  static const sim::Machine m = sim::Machine(arch::e870());
  return m;
}

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "trace_test_" + name;
}

/// Feeds a decoded record list into any sink — the single generator
/// both the writer and the replayers consume in these tests.
void emit(TraceSink& sink, const std::vector<TraceRecord>& records) {
  for (const TraceRecord& r : records) {
    switch (r.op) {
      case TraceOp::kAccess:
        sink.access(r.addr);
        break;
      case TraceOp::kDcbtHint:
        sink.dcbt_hint(r.addr, r.length_bytes, r.descending);
        break;
      case TraceOp::kDcbtStop:
        sink.dcbt_stop(r.addr);
        break;
      case TraceOp::kMark:
        sink.mark(r.mark);
        break;
    }
  }
}

std::vector<TraceRecord> read_all(TraceReader& reader) {
  std::vector<TraceRecord> all, chunk;
  while (reader.next_chunk(chunk)) {
    EXPECT_LE(chunk.size(), reader.chunk_records());
    all.insert(all.end(), chunk.begin(), chunk.end());
  }
  return all;
}

void write_trace(const std::string& path,
                 const std::vector<TraceRecord>& records,
                 std::uint32_t chunk_records) {
  WriterOptions options;
  options.chunk_records = chunk_records;
  TraceWriter writer(path, options);
  emit(writer, records);
  writer.finish();
}

std::vector<unsigned char> slurp(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  std::fseek(f, 0, SEEK_END);
  std::vector<unsigned char> bytes(static_cast<std::size_t>(std::ftell(f)));
  std::fseek(f, 0, SEEK_SET);
  EXPECT_EQ(std::fread(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
  return bytes;
}

void spit(const std::string& path, const std::vector<unsigned char>& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr) << path;
  EXPECT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
}

std::uint64_t get_u64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

void put_u32(unsigned char* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<unsigned char>(v >> (8 * i));
}

void put_u64(unsigned char* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<unsigned char>(v >> (8 * i));
}

// ---------------------------------------------------------------------------
// Round trips.

std::vector<TraceRecord> mixed_records() {
  std::vector<TraceRecord> r;
  r.push_back({TraceOp::kAccess, 4096});
  r.push_back({TraceOp::kAccess, 0});             // negative delta
  r.push_back({TraceOp::kAccess, 1ull << 47});    // multi-byte varint
  r.push_back({TraceOp::kDcbtHint, 8192, 2048, true});
  r.push_back({TraceOp::kAccess, 8192});
  r.push_back({TraceOp::kAccess, 8320});
  r.push_back({TraceOp::kDcbtStop, 8192});
  r.push_back({TraceOp::kMark, 0, 0, false, ubench::kMarkMeasureStart});
  r.push_back({TraceOp::kAccess, 8448});  // prev survives the mark
  r.push_back({TraceOp::kDcbtHint, 1ull << 40, 1ull << 21, false});
  r.push_back({TraceOp::kDcbtStop, 1ull << 40});
  r.push_back({TraceOp::kMark, 0, 0, false, 999});
  r.push_back({TraceOp::kAccess, 128});
  return r;
}

TEST(TraceRoundTrip, AllOpsSurviveEveryChunkSizeAndReadMode) {
  const std::vector<TraceRecord> records = mixed_records();
  const std::uint64_t accesses = static_cast<std::uint64_t>(
      std::count_if(records.begin(), records.end(), [](const TraceRecord& r) {
        return r.op == TraceOp::kAccess;
      }));

  // Chunk size 1 (predictor reset every record), a non-divisor of the
  // record count, and one far larger than the stream.
  for (const std::uint32_t chunk_records : {1u, 3u, 1u << 20}) {
    const std::string path = temp_path("roundtrip.p8t");
    write_trace(path, records, chunk_records);
    for (const bool use_mmap : {false, true}) {
      ReaderOptions options;
      options.use_mmap = use_mmap;
      TraceReader reader(path, options);
      EXPECT_EQ(reader.total_records(), records.size());
      EXPECT_EQ(reader.total_accesses(), accesses);
      EXPECT_EQ(reader.chunk_records(), chunk_records);
      EXPECT_EQ(read_all(reader), records)
          << "chunk_records " << chunk_records << " mmap " << use_mmap;
      // rewind() restarts the stream from chunk 0.
      reader.rewind();
      EXPECT_EQ(read_all(reader), records);
    }
    std::remove(path.c_str());
  }
}

TEST(TraceRoundTrip, WriterAccountsRecordsChunksAndBytes) {
  const std::string path = temp_path("accounting.p8t");
  WriterOptions options;
  options.chunk_records = 4;
  TraceWriter writer(path, options);
  EXPECT_EQ(writer.bytes(), kHeaderBytes);
  for (int i = 0; i < 10; ++i) writer.access(static_cast<std::uint64_t>(i) * 128);
  EXPECT_EQ(writer.records(), 10u);
  EXPECT_EQ(writer.accesses(), 10u);
  EXPECT_EQ(writer.chunks(), 3u);  // 4 + 4 + an open chunk of 2
  writer.finish();
  TraceReader reader(path);
  EXPECT_EQ(reader.chunk_count(), 3u);
  EXPECT_EQ(reader.total_records(), 10u);
  std::remove(path.c_str());
}

TEST(TraceRoundTrip, EmptyTraceRoundTrips) {
  const std::string path = temp_path("empty.p8t");
  write_trace(path, {}, 64);
  TraceReader reader(path);
  EXPECT_EQ(reader.total_records(), 0u);
  EXPECT_EQ(reader.chunk_count(), 0u);
  std::vector<TraceRecord> chunk;
  EXPECT_FALSE(reader.next_chunk(chunk));
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Hostile-input rejection.

template <typename Fn>
void expect_trace_error(Fn&& fn, const std::string& reason_substr) {
  try {
    fn();
    FAIL() << "expected TraceError containing \"" << reason_substr << "\"";
  } catch (const TraceError& e) {
    EXPECT_NE(e.reason().find(reason_substr), std::string::npos)
        << "got reason: " << e.reason();
  }
}

/// Bytes of a small, valid, multi-chunk trace.
std::vector<unsigned char> valid_trace_bytes() {
  const std::string path = temp_path("valid.p8t");
  WriterOptions options;
  options.chunk_records = 64;
  TraceWriter writer(path, options);
  for (int i = 0; i < 500; ++i) writer.access(static_cast<std::uint64_t>(i) * 128);
  writer.dcbt_hint(1 << 20, 4096, false);
  writer.dcbt_stop(1 << 20);
  writer.mark(ubench::kMarkMeasureStart);
  writer.finish();
  std::vector<unsigned char> bytes = slurp(path);
  std::remove(path.c_str());
  return bytes;
}

/// Writes `bytes` to a temp file and expects open + full read to fail
/// with the given reason.  Returns the error's byte offset.
std::uint64_t expect_rejected(const std::vector<unsigned char>& bytes,
                              const std::string& reason_substr,
                              const ReaderOptions& options = ReaderOptions()) {
  const std::string path = temp_path("corrupt.p8t");
  spit(path, bytes);
  std::uint64_t offset = 0;
  try {
    TraceReader reader(path, options);
    std::vector<TraceRecord> chunk;
    while (reader.next_chunk(chunk)) {
    }
    ADD_FAILURE() << "expected TraceError containing \"" << reason_substr
                  << "\"";
  } catch (const TraceError& e) {
    EXPECT_NE(e.reason().find(reason_substr), std::string::npos)
        << "got reason: " << e.reason();
    offset = e.byte_offset();
  }
  std::remove(path.c_str());
  return offset;
}

TEST(TraceCorruption, TruncationAtAnyPointIsRejected) {
  const std::vector<unsigned char> bytes = valid_trace_bytes();
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{16}, std::size_t{63}, bytes.size() / 2,
        bytes.size() - 1}) {
    const std::vector<unsigned char> cut(bytes.begin(), bytes.begin() + keep);
    const std::string path = temp_path("truncated.p8t");
    spit(path, cut);
    try {
      TraceReader reader(path);
      std::vector<TraceRecord> chunk;
      while (reader.next_chunk(chunk)) {
      }
      ADD_FAILURE() << "truncation to " << keep << " bytes was accepted";
    } catch (const TraceError& e) {
      EXPECT_FALSE(e.reason().empty());
      EXPECT_LE(e.byte_offset(), bytes.size()) << "keep " << keep;
    }
    std::remove(path.c_str());
  }
}

TEST(TraceCorruption, BadMagicIsRejectedAtOffsetZero) {
  std::vector<unsigned char> bytes = valid_trace_bytes();
  bytes[0] ^= 0xff;
  EXPECT_EQ(expect_rejected(bytes, "bad magic"), 0u);
}

TEST(TraceCorruption, WrongVersionIsRejectedAtItsField) {
  std::vector<unsigned char> bytes = valid_trace_bytes();
  put_u32(bytes.data() + 8, kVersion + 1);
  EXPECT_EQ(expect_rejected(bytes, "unsupported trace version"), 8u);
}

TEST(TraceCorruption, ZeroChunkRecordsIsRejected) {
  std::vector<unsigned char> bytes = valid_trace_bytes();
  put_u32(bytes.data() + 12, 0);
  expect_rejected(bytes, "chunk_records is zero");
}

TEST(TraceCorruption, HeaderTotalsAreCrossCheckedAgainstDirectory) {
  // The header is outside the checksum (its totals are patched after
  // the sum is sealed), so an inflated total must be caught by the
  // directory cross-check, not the checksum.
  std::vector<unsigned char> bytes = valid_trace_bytes();
  put_u64(bytes.data() + 16, get_u64(bytes.data() + 16) + 1);
  expect_rejected(bytes, "does not match header total");
}

TEST(TraceCorruption, BadFooterMagicIsRejected) {
  std::vector<unsigned char> bytes = valid_trace_bytes();
  bytes.back() ^= 0xff;
  expect_rejected(bytes, "bad footer magic");
}

TEST(TraceCorruption, DirectoryOffsetPastEofIsRejected) {
  std::vector<unsigned char> bytes = valid_trace_bytes();
  put_u64(bytes.data() + bytes.size() - kFooterBytes, bytes.size() + 1024);
  expect_rejected(bytes, "directory offset outside file");
}

TEST(TraceCorruption, InflatedChunkCountIsRejected) {
  std::vector<unsigned char> bytes = valid_trace_bytes();
  unsigned char* footer = bytes.data() + bytes.size() - kFooterBytes;
  put_u64(footer + 8, get_u64(footer + 8) + 1);
  expect_rejected(bytes, "directory size does not match chunk count");
}

TEST(TraceCorruption, FlippedChunkByteFailsTheChecksum) {
  std::vector<unsigned char> bytes = valid_trace_bytes();
  bytes[kHeaderBytes + 5] ^= 0x40;
  expect_rejected(bytes, "footer checksum mismatch");
  // Same through the mmap read path.
  ReaderOptions options;
  options.use_mmap = true;
  expect_rejected(bytes, "footer checksum mismatch", options);
}

TEST(TraceCorruption, InflatedDirectoryRecordCountFailsDecode) {
  // Grow the last chunk's directory record count (the last chunk is
  // partial, so the [1, chunk_records] bound still holds; also bump
  // the header total so the structural cross-check passes) and skip
  // the checksum: the decoder must notice the chunk's bytes run out
  // before the claimed record count is reached.
  std::vector<unsigned char> bytes = valid_trace_bytes();
  const unsigned char* footer = bytes.data() + bytes.size() - kFooterBytes;
  const std::uint64_t dir_offset = get_u64(footer);
  const std::uint64_t chunk_count = get_u64(footer + 8);
  unsigned char* entry =
      bytes.data() + dir_offset + (chunk_count - 1) * kDirEntryBytes;
  const std::uint32_t records =
      static_cast<std::uint32_t>(entry[8]) | (entry[9] << 8);
  put_u32(entry + 8, records + 1);
  put_u64(bytes.data() + 16, get_u64(bytes.data() + 16) + 1);
  ReaderOptions options;
  options.verify_checksum = false;
  expect_rejected(bytes, "truncated varint", options);
}

TEST(TraceCorruption, ShrunkDirectoryRecordCountLeavesTrailingBytes) {
  std::vector<unsigned char> bytes = valid_trace_bytes();
  const std::uint64_t dir_offset =
      get_u64(bytes.data() + bytes.size() - kFooterBytes);
  unsigned char* entry = bytes.data() + dir_offset;
  const std::uint32_t records =
      static_cast<std::uint32_t>(entry[8]) | (entry[9] << 8);
  ASSERT_GT(records, 1u);
  put_u32(entry + 8, records - 1);
  put_u32(entry + 12, records - 1);  // all records in chunk 0 are accesses
  put_u64(bytes.data() + 16, get_u64(bytes.data() + 16) - 1);
  put_u64(bytes.data() + 24, get_u64(bytes.data() + 24) - 1);
  ReaderOptions options;
  options.verify_checksum = false;
  expect_rejected(bytes, "trailing bytes", options);
}

TEST(TraceCorruption, WrongDirectoryAccessCountFailsDecode) {
  std::vector<unsigned char> bytes = valid_trace_bytes();
  const std::uint64_t dir_offset =
      get_u64(bytes.data() + bytes.size() - kFooterBytes);
  unsigned char* entry = bytes.data() + dir_offset;
  const std::uint32_t accesses =
      static_cast<std::uint32_t>(entry[12]) | (entry[13] << 8);
  ASSERT_GT(accesses, 0u);
  put_u32(entry + 12, accesses - 1);
  put_u64(bytes.data() + 24, get_u64(bytes.data() + 24) - 1);
  ReaderOptions options;
  options.verify_checksum = false;
  expect_rejected(bytes, "accesses but directory claims", options);
}

TEST(TraceCorruption, UnfinishedTraceIsRejected) {
  const std::string path = temp_path("unfinished.p8t");
  {
    WriterOptions options;
    options.chunk_records = 16;
    TraceWriter writer(path, options);
    for (int i = 0; i < 100; ++i)
      writer.access(static_cast<std::uint64_t>(i) * 128);
    // No finish(): the dtor closes the file without directory/footer.
  }
  expect_trace_error([&] { TraceReader reader(path); }, "bad footer magic");
  std::remove(path.c_str());
}

TEST(TraceCorruption, MissingFileReportsCannotOpen) {
  expect_trace_error(
      [&] { TraceReader reader(temp_path("does-not-exist.p8t")); },
      "cannot open");
}

// ---------------------------------------------------------------------------
// Out-of-core replay equivalence.

struct ReplayObservation {
  sim::BatchStats stats;
  std::vector<ChunkedReplayer::Mark> marks;
  double now_ns = 0.0;
  std::string counters_csv;
};

void expect_same_observation(const ReplayObservation& a,
                             const ReplayObservation& b,
                             const std::string& what) {
  EXPECT_EQ(a.stats.accesses, b.stats.accesses) << what;
  EXPECT_EQ(a.stats.l1_fast_hits, b.stats.l1_fast_hits) << what;
  EXPECT_EQ(a.stats.prefetched_hits, b.stats.prefetched_hits) << what;
  EXPECT_EQ(a.stats.busy_ns, b.stats.busy_ns) << what;  // bit-identical
  EXPECT_EQ(a.now_ns, b.now_ns) << what;
  EXPECT_EQ(a.counters_csv, b.counters_csv) << what;
  ASSERT_EQ(a.marks.size(), b.marks.size()) << what;
  for (std::size_t i = 0; i < a.marks.size(); ++i) {
    EXPECT_EQ(a.marks[i].id, b.marks[i].id) << what;
    EXPECT_EQ(a.marks[i].now_ns, b.marks[i].now_ns) << what;
    EXPECT_EQ(a.marks[i].accesses, b.marks[i].accesses) << what;
  }
}

/// In-memory reference: the stream through a ChunkedReplayer on a
/// fresh probe, never touching disk.
ReplayObservation replay_in_memory(const std::vector<TraceRecord>& records,
                                   sim::ProbeOptions options) {
  sim::CounterRegistry counters;
  options.counters = &counters;
  sim::LatencyProbe probe = machine().probe(options);
  ChunkedReplayer sink(probe);
  emit(sink, records);
  sink.flush();
  return {sink.stats(), sink.marks(), probe.now_ns(), counters.to_csv()};
}

/// File-backed replay: write, read back, stream through replay_trace.
ReplayObservation replay_via_file(const std::vector<TraceRecord>& records,
                                  sim::ProbeOptions options,
                                  std::uint32_t chunk_records, bool use_mmap) {
  const std::string path = temp_path("prop.p8t");
  write_trace(path, records, chunk_records);
  sim::CounterRegistry counters;
  options.counters = &counters;
  sim::LatencyProbe probe = machine().probe(options);
  ReaderOptions reader_options;
  reader_options.use_mmap = use_mmap;
  TraceReader reader(path, reader_options);
  const ReplayResult result = replay_trace(reader, probe);
  EXPECT_EQ(result.records, records.size());
  std::remove(path.c_str());
  return {result.stats, result.marks, probe.now_ns(), counters.to_csv()};
}

/// Random address streams in the shapes the workloads produce:
/// sequential, strided, pointer-chase and uniform random, with marks
/// and the occasional DCBT hint window sprinkled in.
std::vector<TraceRecord> random_stream(p8::proptest::Gen& gen) {
  const std::uint64_t line = 128;
  const std::uint64_t lines = gen.range(64, 512);
  const std::uint64_t n = gen.range(200, 2000);
  const int kind = gen.int_range(0, 3);

  std::vector<std::uint64_t> addrs;
  addrs.reserve(n);
  switch (kind) {
    case 0:  // sequential scan
      for (std::uint64_t i = 0; i < n; ++i) addrs.push_back(i * line);
      break;
    case 1: {  // strided scan over a wrapped working set
      const std::uint64_t stride = gen.range(2, 64);
      for (std::uint64_t i = 0; i < n; ++i)
        addrs.push_back((i * stride % lines) * line);
      break;
    }
    case 2: {  // pointer chase over a random permutation
      std::vector<std::uint64_t> next(lines);
      std::iota(next.begin(), next.end(), 0);
      for (std::uint64_t i = lines - 1; i > 0; --i)
        std::swap(next[i], next[gen.range(0, i - 1)]);  // Sattolo
      std::uint64_t at = 0;
      for (std::uint64_t i = 0; i < n; ++i) {
        addrs.push_back(at * line);
        at = next[at];
      }
      break;
    }
    default:  // uniform random
      for (std::uint64_t i = 0; i < n; ++i)
        addrs.push_back(gen.range(0, lines - 1) * line);
      break;
  }

  std::vector<TraceRecord> records;
  records.reserve(n + 16);
  bool hinted = false;
  for (std::uint64_t i = 0; i < n; ++i) {
    if (!hinted && gen.chance(0.01)) {
      records.push_back(
          {TraceOp::kDcbtHint, addrs[i], gen.range(1, 16) * line,
           gen.chance(0.5)});
      hinted = true;
    } else if (hinted && gen.chance(0.05)) {
      records.push_back({TraceOp::kDcbtStop, records.back().addr});
      hinted = false;
    }
    if (gen.chance(0.005))
      records.push_back({TraceOp::kMark, 0, 0, false, gen.range(1, 8)});
    records.push_back({TraceOp::kAccess, addrs[i]});
  }
  records.push_back(
      {TraceOp::kMark, 0, 0, false, ubench::kMarkMeasureStart});
  return records;
}

TEST(TraceProperty, FileReplayBitIdenticalToInMemoryAtEveryChunkSize) {
  P8_PROP(gen, 25, 0x8f7a6b5c4d3e2f1ull) {
    const std::vector<TraceRecord> records = random_stream(gen);
    sim::ProbeOptions options;
    options.page_bytes =
        gen.chance(0.5) ? 64ull * 1024 : 16ull << 20;
    options.dscr = gen.pick({0, 1, 7});
    const ReplayObservation reference = replay_in_memory(records, options);

    // Chunk size 1, a non-divisor of the stream length, and one far
    // larger than the stream — with both read modes.
    const std::uint32_t sizes[] = {1u, 7u, 1u << 20};
    for (const std::uint32_t chunk_records : sizes) {
      const bool use_mmap = gen.chance(0.5);
      const ReplayObservation observed =
          replay_via_file(records, options, chunk_records, use_mmap);
      expect_same_observation(observed, reference,
                              "chunk_records " +
                                  std::to_string(chunk_records) +
                                  (use_mmap ? " (mmap)" : ""));
    }
  }
}

TEST(TraceProperty, ScalarReplayOfFileMatchesInMemoryClock) {
  // The decoded stream fed one access at a time must land on the same
  // clock as the batched in-memory replay — ties the codec to the
  // scalar/batched equivalence contract.
  P8_PROP(gen, 8, 0x51de0c0deull) {
    const std::vector<TraceRecord> records = random_stream(gen);
    sim::ProbeOptions options;
    options.dscr = gen.pick({1, 7});
    const ReplayObservation reference = replay_in_memory(records, options);

    const std::string path = temp_path("scalar.p8t");
    write_trace(path, records, 64);
    sim::CounterRegistry counters;
    options.counters = &counters;
    sim::LatencyProbe probe = machine().probe(options);
    ScalarReplayer sink(probe);
    TraceReader reader(path);
    std::vector<TraceRecord> chunk;
    while (reader.next_chunk(chunk)) emit(sink, chunk);
    std::remove(path.c_str());

    EXPECT_EQ(probe.now_ns(), reference.now_ns);
    EXPECT_EQ(sink.accesses(), reference.stats.accesses);
    EXPECT_EQ(counters.to_csv(), reference.counters_csv);
  }
}

// ---------------------------------------------------------------------------
// The registered workloads: recording to a file and replaying it must
// reproduce the in-memory run exactly, marks included.

TEST(TraceWorkloads, FileReplayMatchesInMemoryForEveryRegisteredWorkload) {
  for (const ubench::TraceWorkload& w : ubench::trace_workloads()) {
    const std::uint64_t hint = 20000;
    const std::string path = temp_path("wk_" + w.name + ".p8t");
    {
      WriterOptions options;
      options.chunk_records = 512;
      TraceWriter writer(path, options);
      w.emit(machine(), hint, writer);
      writer.finish();
    }

    sim::ProbeOptions probe_options = w.probe_options;
    sim::CounterRegistry mem_counters;
    probe_options.counters = &mem_counters;
    sim::LatencyProbe mem_probe = machine().probe(probe_options);
    ChunkedReplayer mem_sink(mem_probe, 512);
    w.emit(machine(), hint, mem_sink);
    mem_sink.flush();
    const ReplayObservation reference = {mem_sink.stats(), mem_sink.marks(),
                                         mem_probe.now_ns(),
                                         mem_counters.to_csv()};

    sim::CounterRegistry file_counters;
    probe_options.counters = &file_counters;
    sim::LatencyProbe file_probe = machine().probe(probe_options);
    TraceReader reader(path);
    const ReplayResult result = replay_trace(reader, file_probe);
    const ReplayObservation observed = {result.stats, result.marks,
                                        file_probe.now_ns(),
                                        file_counters.to_csv()};

    expect_same_observation(observed, reference, w.name);
    // Every workload carries its measurement boundary in the trace.
    bool has_measure_mark = false;
    for (const auto& m : result.marks)
      has_measure_mark |= m.id == ubench::kMarkMeasureStart;
    EXPECT_TRUE(has_measure_mark) << w.name;
    std::remove(path.c_str());
  }
}

}  // namespace
}  // namespace p8::trace
