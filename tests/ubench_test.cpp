// Tests for the microbenchmark workloads: the Figure 2/7/8 behaviours
// must show up when the workloads drive the machine model.
#include <gtest/gtest.h>

#include "common/units.hpp"
#include "arch/spec.hpp"
#include "sim/machine/machine.hpp"
#include "ubench/workloads.hpp"

namespace p8::ubench {
namespace {

using common::kib;
using common::mib;

const sim::Machine& machine() {
  static const sim::Machine m = sim::Machine(arch::e870());
  return m;
}

ChaseOptions chase_at(std::uint64_t ws) {
  ChaseOptions o;
  o.working_set_bytes = ws;
  o.page_bytes = 16ull << 20;
  return o;
}

TEST(Chase, L1Plateau) {
  const double lat = chase_latency_ns(machine(), chase_at(kib(32)));
  EXPECT_LT(lat, 1.5);
}

TEST(Chase, L2Plateau) {
  const double lat = chase_latency_ns(machine(), chase_at(kib(256)));
  EXPECT_GT(lat, 1.5);
  EXPECT_LT(lat, 5.0);
}

TEST(Chase, L3Plateau) {
  const double lat = chase_latency_ns(machine(), chase_at(mib(4)));
  EXPECT_GT(lat, 4.0);
  EXPECT_LT(lat, 12.0);
}

TEST(Chase, RemoteL3Shelf) {
  // 32 MB: past the local 8 MB region, mostly in the victim pool.
  const double lat = chase_latency_ns(machine(), chase_at(mib(32)));
  EXPECT_GT(lat, 12.0);
  EXPECT_LT(lat, 40.0);
}

TEST(Chase, L4Shoulder) {
  // 128 MB: beyond all SRAM (64 MB) but with strong L4 coverage.
  const double l4ish = chase_latency_ns(machine(), chase_at(mib(128)));
  const double dram = chase_latency_ns(machine(), chase_at(mib(1024)));
  EXPECT_LT(l4ish, dram - 10.0);
  EXPECT_GT(dram, 80.0);
}

TEST(Chase, MonotoneInWorkingSet) {
  double prev = 0.0;
  for (const std::uint64_t ws :
       {kib(32), kib(256), mib(2), mib(16), mib(96), mib(512)}) {
    const double lat = chase_latency_ns(machine(), chase_at(ws));
    EXPECT_GE(lat, prev - 0.5) << "ws " << ws;
    prev = lat;
  }
}

TEST(Chase, SmallPagesSpikeNear4MB) {
  // The Fig. 2 red-vs-blue gap: with 64 KB pages a 4-6 MB working set
  // overflows the 48-entry ERAT; with 16 MB pages it does not.
  ChaseOptions small = chase_at(mib(6));
  small.page_bytes = 64 * 1024;
  const double with_small = chase_latency_ns(machine(), small);
  const double with_huge = chase_latency_ns(machine(), chase_at(mib(6)));
  EXPECT_GT(with_small, with_huge + 1.0);
}

TEST(Chase, PageSizeIrrelevantInL1) {
  ChaseOptions small = chase_at(kib(32));
  small.page_bytes = 64 * 1024;
  const double a = chase_latency_ns(machine(), small);
  const double b = chase_latency_ns(machine(), chase_at(kib(32)));
  EXPECT_NEAR(a, b, 0.3);
}

TEST(Chase, ScanProducesOrderedSizes) {
  const auto points = memory_latency_scan(
      machine(), {kib(64), mib(1), mib(64)}, 16ull << 20);
  ASSERT_EQ(points.size(), 3u);
  EXPECT_LT(points[0].latency_ns, points[1].latency_ns);
  EXPECT_LT(points[1].latency_ns, points[2].latency_ns);
}

TEST(Chase, ForwardStrideChainIsPrefetchable) {
  // A unit-stride forward chain over an out-of-cache working set: with
  // the prefetcher on, the dependent chase settles near
  // latency/(depth+1); with it off, full latency.
  ChaseOptions off = chase_at(mib(512));
  off.pattern = ChasePattern::kForwardStride;
  off.dscr = 1;
  ChaseOptions on = off;
  on.dscr = 7;
  const double lat_off = chase_latency_ns(machine(), off);
  const double lat_on = chase_latency_ns(machine(), on);
  EXPECT_GT(lat_off, 80.0);
  EXPECT_LT(lat_on, 20.0);
}

TEST(Chase, BackwardChainsAreDetectedToo) {
  // POWER8's prefetcher detects descending streams.
  ChaseOptions opt = chase_at(mib(512));
  opt.pattern = ChasePattern::kBackwardStride;
  opt.dscr = 7;
  EXPECT_LT(chase_latency_ns(machine(), opt), 20.0);
}

TEST(Chase, RandomDefeatsThePrefetcher) {
  ChaseOptions opt = chase_at(mib(512));
  opt.dscr = 7;  // prefetch on, but the pattern is random
  EXPECT_GT(chase_latency_ns(machine(), opt), 80.0);
}

TEST(Chase, StridedChainsCoverEveryLine) {
  // In-cache working set: any pattern must produce pure L1 hits after
  // warm-up, proving the chain is a single full cycle.
  for (const ChasePattern pattern :
       {ChasePattern::kForwardStride, ChasePattern::kBackwardStride}) {
    for (const std::uint64_t stride : {1ull, 3ull, 8ull}) {
      ChaseOptions opt = chase_at(kib(32));
      opt.pattern = pattern;
      opt.stride_lines = stride;
      EXPECT_LT(chase_latency_ns(machine(), opt), 1.0)
          << "stride " << stride;
    }
  }
}

// ------------------------------------------------------- stride (Fig 7) ----

TEST(Stride, DisabledDetectorPaysFullLatency) {
  StrideOptions o;
  o.stride_n = false;
  const double lat = stride_latency_ns(machine(), o);
  EXPECT_GT(lat, 80.0);  // ~DRAM
}

TEST(Stride, EnabledDetectorHidesMostLatency) {
  StrideOptions o;
  o.stride_n = true;
  const double lat = stride_latency_ns(machine(), o);
  EXPECT_LT(lat, 20.0);  // paper: ~14 ns
  EXPECT_GT(lat, 5.0);
}

TEST(Stride, DepthMattersWhenEnabled) {
  StrideOptions shallow;
  shallow.stride_n = true;
  shallow.dscr = 2;
  StrideOptions deep;
  deep.stride_n = true;
  deep.dscr = 7;
  EXPECT_GT(stride_latency_ns(machine(), shallow),
            stride_latency_ns(machine(), deep));
}

TEST(Stride, UnitStrideNeedsNoStrideN) {
  StrideOptions o;
  o.stride_lines = 1;
  o.stride_n = false;
  o.dscr = 7;
  EXPECT_LT(stride_latency_ns(machine(), o), 20.0);
}

// --------------------------------------------------------- DCBT (Fig 8) ----

TEST(Dcbt, HelpsSmallBlocks) {
  DcbtOptions plain;
  plain.block_bytes = 2048;
  DcbtOptions hinted = plain;
  hinted.use_dcbt = true;
  const double without = dcbt_block_bandwidth_gbs(machine(), plain);
  const double with = dcbt_block_bandwidth_gbs(machine(), hinted);
  // Paper: "more than 25%" for small arrays.
  EXPECT_GT(with, 1.25 * without);
}

TEST(Dcbt, NegligibleForLargeBlocks) {
  DcbtOptions plain;
  plain.block_bytes = 64 * 1024;
  plain.total_bytes = 64ull << 20;
  DcbtOptions hinted = plain;
  hinted.use_dcbt = true;
  const double without = dcbt_block_bandwidth_gbs(machine(), plain);
  const double with = dcbt_block_bandwidth_gbs(machine(), hinted);
  EXPECT_LT(with, 1.10 * without);
}

TEST(Dcbt, BandwidthGrowsWithBlockSize) {
  double prev = 0.0;
  for (const std::uint64_t bs : {512ull, 2048ull, 8192ull, 65536ull}) {
    DcbtOptions o;
    o.block_bytes = bs;
    const double bw = dcbt_block_bandwidth_gbs(machine(), o);
    EXPECT_GE(bw, prev * 0.95) << "block " << bs;
    prev = bw;
  }
}

TEST(Dcbt, RejectsSubLineBlocks) {
  DcbtOptions o;
  o.block_bytes = 64;
  EXPECT_THROW(dcbt_block_bandwidth_gbs(machine(), o),
               std::invalid_argument);
}

// ---------------------------------------------------------------------
// Batched replay through the workload drivers: every driver must
// report the same result — and drive the same counter totals — with
// batched replay on or off.

TEST(BatchedReplay, ChasePatternsMatchScalar) {
  for (const ChasePattern pattern :
       {ChasePattern::kRandom, ChasePattern::kForwardStride,
        ChasePattern::kBackwardStride}) {
    ChaseOptions batched;
    batched.working_set_bytes = mib(4);
    batched.page_bytes = 64 * 1024;
    batched.dscr = 2;  // prefetch on: streams cross the replay chunks
    batched.pattern = pattern;
    batched.warm_accesses = 1u << 15;
    batched.measure_accesses = 1u << 15;
    ChaseOptions scalar = batched;
    scalar.batched = false;

    sim::CounterRegistry batched_counters, scalar_counters;
    batched.counters = &batched_counters;
    scalar.counters = &scalar_counters;

    const double lat_batched = chase_latency_ns(machine(), batched);
    const double lat_scalar = chase_latency_ns(machine(), scalar);
    EXPECT_EQ(lat_batched, lat_scalar)
        << "pattern " << static_cast<int>(pattern);
    EXPECT_EQ(batched_counters.to_csv(), scalar_counters.to_csv())
        << "pattern " << static_cast<int>(pattern);
  }
}

TEST(BatchedReplay, StrideMatchesScalar) {
  StrideOptions batched;
  batched.accesses = 50000;
  StrideOptions scalar = batched;
  scalar.batched = false;

  sim::CounterRegistry batched_counters, scalar_counters;
  batched.counters = &batched_counters;
  scalar.counters = &scalar_counters;

  EXPECT_EQ(stride_latency_ns(machine(), batched),
            stride_latency_ns(machine(), scalar));
  EXPECT_EQ(batched_counters.to_csv(), scalar_counters.to_csv());
}

TEST(BatchedReplay, DcbtMatchesScalar) {
  for (const bool use_dcbt : {false, true}) {
    DcbtOptions batched;
    batched.block_bytes = 2048;
    batched.total_bytes = 4ull << 20;
    batched.use_dcbt = use_dcbt;
    DcbtOptions scalar = batched;
    scalar.batched = false;

    sim::CounterRegistry batched_counters, scalar_counters;
    batched.counters = &batched_counters;
    scalar.counters = &scalar_counters;

    EXPECT_EQ(dcbt_block_bandwidth_gbs(machine(), batched),
              dcbt_block_bandwidth_gbs(machine(), scalar))
        << "use_dcbt " << use_dcbt;
    EXPECT_EQ(batched_counters.to_csv(), scalar_counters.to_csv())
        << "use_dcbt " << use_dcbt;
  }
}

}  // namespace
}  // namespace p8::ubench
