// p8lint — the project-aware static analyzer (src/lint).
//
//   p8lint gate     [--root=DIR] [--allowlist=FILE] [--today=YYYY-MM-DD]
//                   [--json]
//   p8lint check    FILE... [--root=DIR] [--json]
//   p8lint fixtures [--root=DIR] [--dir=tests/lint_fixtures]
//   p8lint rules
//
// `gate` lints every .cpp/.hpp under src/, bench/, tools/ and
// examples/, applies the expiring allowlist (p8lint.allow), and fails
// on any finding — the form ctest, scripts/tier1.sh and CI run.
// `check` lints explicit files with no allowlist: the WILL_FAIL ctest
// twin points it at a deliberately bad fixture.  `fixtures` runs the
// self-test corpus in tests/lint_fixtures: each fixture declares the
// path it pretends to live at and the exact rule set it must trip, and
// the run also fails if any registered rule is never exercised by the
// corpus.  `rules` lists the registry.  The `--gate` / `--fixtures`
// spellings are accepted as aliases.  Exit codes: 0 clean, 1 findings
// or fixture mismatch, 2 usage/configuration error (malformed
// allowlist, unreadable file) — gating scripts treat 1 and 2
// differently on purpose: 2 means the lint setup itself is broken.
#include <algorithm>
#include <cstdio>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "lint/allowlist.hpp"
#include "lint/engine.hpp"
#include "lint/rules.hpp"

namespace {

using namespace p8;

void usage(std::FILE* to) {
  std::fputs(
      "usage: p8lint <gate|check|fixtures|rules> [options]\n"
      "  gate     [--root=DIR] [--allowlist=FILE] [--today=YYYY-MM-DD]"
      " [--json]\n"
      "  check    FILE... [--root=DIR] [--json]\n"
      "  fixtures [--root=DIR] [--dir=PATH]\n"
      "  rules\n"
      "exit: 0 clean, 1 findings, 2 usage/config error\n",
      to);
}

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  out = buf.str();
  return true;
}

std::string today_utc() {
  const std::time_t now = std::time(nullptr);
  std::tm tm_utc{};
  gmtime_r(&now, &tm_utc);
  char buf[16];
  std::strftime(buf, sizeof buf, "%Y-%m-%d", &tm_utc);
  return buf;
}

void print_findings(const std::vector<lint::Finding>& findings, bool json) {
  const std::string report =
      json ? lint::format_json(findings) : lint::format_text(findings);
  std::fputs(report.c_str(), stdout);
}

/// docs/COUNTERS.md under --root; nullopt-by-empty when absent.
bool load_counters_doc(const std::string& root, std::string& doc) {
  return read_file(root + "/docs/COUNTERS.md", doc);
}

int run_gate(common::ArgParser& args) {
  const std::string root = args.get_string("root", ".", "repo root to scan");
  const std::string allow_path = args.get_string(
      "allowlist", "", "allowlist file (default ROOT/p8lint.allow)");
  const std::string today =
      args.get_string("today", "", "override today's date (YYYY-MM-DD)");
  const bool json = args.get_flag("json", "emit findings as JSON");
  if (!args.unknown_args().empty()) return 2;

  std::string counters_doc;
  if (!load_counters_doc(root, counters_doc)) {
    std::fprintf(stderr,
                 "p8lint: %s/docs/COUNTERS.md is unreadable — the "
                 "counter-undocumented rule has nothing to check against\n",
                 root.c_str());
    return 2;
  }

  std::vector<lint::Finding> findings;
  const std::vector<std::string> sources = lint::discover_sources(root);
  if (sources.empty()) {
    std::fprintf(stderr, "p8lint: no sources found under %s\n", root.c_str());
    return 2;
  }
  for (const std::string& rel : sources) {
    std::string content;
    if (!read_file(root + "/" + rel, content)) {
      std::fprintf(stderr, "p8lint: cannot read %s\n", rel.c_str());
      return 2;
    }
    std::vector<lint::Finding> file_findings =
        lint::lint_source(rel, content, &counters_doc);
    findings.insert(findings.end(),
                    std::make_move_iterator(file_findings.begin()),
                    std::make_move_iterator(file_findings.end()));
  }

  const std::string resolved_allow =
      allow_path.empty() ? root + "/p8lint.allow" : allow_path;
  std::string allow_text;
  if (read_file(resolved_allow, allow_text)) {
    lint::Allowlist allowlist;
    const std::string err =
        lint::parse_allowlist(allow_text, "p8lint.allow", allowlist);
    if (!err.empty()) {
      std::fprintf(stderr, "p8lint: %s\n", err.c_str());
      return 2;
    }
    lint::apply_allowlist(allowlist,
                          today.empty() ? today_utc() : today, findings);
  }

  lint::sort_findings(findings);
  print_findings(findings, json);
  if (findings.empty()) {
    if (!json)
      std::fprintf(stdout, "p8lint: clean (%zu files, %zu rules)\n",
                   sources.size(), lint::rules().size());
    return 0;
  }
  std::fprintf(stderr, "p8lint: %zu finding(s)\n", findings.size());
  return 1;
}

/// A fixture's first line:
///   // p8lint-fixture: path=src/sim/x.cpp expect=det-rand,conc-volatile
/// `expect=none` declares a clean fixture.
bool parse_fixture_directive(const std::string& content, std::string& as_path,
                             std::set<std::string>& expect) {
  const std::string prefix = "// p8lint-fixture:";
  if (content.rfind(prefix, 0) != 0) return false;
  const std::size_t eol = content.find('\n');
  std::istringstream fields(content.substr(
      prefix.size(), eol == std::string::npos ? eol : eol - prefix.size()));
  std::string field;
  bool saw_expect = false;
  while (fields >> field) {
    if (field.rfind("path=", 0) == 0) {
      as_path = field.substr(5);
    } else if (field.rfind("expect=", 0) == 0) {
      saw_expect = true;
      std::istringstream ids(field.substr(7));
      std::string id;
      while (std::getline(ids, id, ','))
        if (!id.empty() && id != "none") expect.insert(id);
    } else {
      return false;
    }
  }
  return !as_path.empty() && saw_expect;
}

int run_check(common::ArgParser& args, const std::vector<std::string>& files) {
  const std::string root =
      args.get_string("root", ".", "repo root (for docs/COUNTERS.md)");
  const bool json = args.get_flag("json", "emit findings as JSON");
  if (!args.unknown_args().empty()) return 2;
  if (files.empty()) {
    std::fputs("p8lint: check needs at least one file\n", stderr);
    return 2;
  }

  std::string counters_doc;
  const bool have_doc = load_counters_doc(root, counters_doc);

  std::vector<lint::Finding> findings;
  for (const std::string& file : files) {
    std::string content;
    if (!read_file(file, content)) {
      std::fprintf(stderr, "p8lint: cannot read %s\n", file.c_str());
      return 2;
    }
    // A fixture directive relocates the buffer to its pretend path so
    // path-scoped rules fire the same way the corpus run sees them.
    std::string as_path = file;
    std::set<std::string> ignored;
    parse_fixture_directive(content, as_path, ignored);
    std::vector<lint::Finding> file_findings = lint::lint_source(
        as_path, content, have_doc ? &counters_doc : nullptr);
    findings.insert(findings.end(),
                    std::make_move_iterator(file_findings.begin()),
                    std::make_move_iterator(file_findings.end()));
  }
  lint::sort_findings(findings);
  print_findings(findings, json);
  return findings.empty() ? 0 : 1;
}

int run_fixtures(common::ArgParser& args) {
  const std::string root = args.get_string("root", ".", "repo root");
  const std::string dir = args.get_string("dir", "tests/lint_fixtures",
                                          "fixture corpus (under root)");
  if (!args.unknown_args().empty()) return 2;

  std::string counters_doc;
  const bool have_doc = load_counters_doc(root, counters_doc);

  // discover_sources walks the canonical trees; the corpus sits apart
  // in tests/ exactly so the gate never scans it, so walk it here.
  std::vector<std::string> fixtures;
  {
    namespace fs = std::filesystem;
    std::error_code ec;
    for (fs::directory_iterator it(fs::path(root) / dir, ec), end; it != end;
         it.increment(ec)) {
      if (ec) break;
      if (it->path().extension() == ".cpp")
        fixtures.push_back(it->path().filename().string());
    }
    std::sort(fixtures.begin(), fixtures.end());
  }
  if (fixtures.empty()) {
    std::fprintf(stderr, "p8lint: no fixtures under %s/%s\n", root.c_str(),
                 dir.c_str());
    return 2;
  }

  int failures = 0;
  std::set<std::string> tripped_anywhere;
  for (const std::string& name : fixtures) {
    std::string content;
    if (!read_file(root + "/" + dir + "/" + name, content)) {
      std::fprintf(stderr, "p8lint: cannot read fixture %s\n", name.c_str());
      return 2;
    }
    std::string as_path;
    std::set<std::string> expect;
    if (!parse_fixture_directive(content, as_path, expect)) {
      std::fprintf(stderr,
                   "p8lint: %s has no `// p8lint-fixture: path=... "
                   "expect=...` first line\n",
                   name.c_str());
      return 2;
    }
    const std::vector<lint::Finding> findings = lint::lint_source(
        as_path, content, have_doc ? &counters_doc : nullptr);
    std::set<std::string> tripped;
    for (const lint::Finding& f : findings) tripped.insert(f.rule);
    tripped_anywhere.insert(tripped.begin(), tripped.end());
    if (tripped == expect) {
      std::fprintf(stdout, "PASS %s\n", name.c_str());
      continue;
    }
    ++failures;
    std::fprintf(stdout, "FAIL %s\n", name.c_str());
    for (const std::string& id : expect)
      if (tripped.count(id) == 0)
        std::fprintf(stdout, "  expected %s: did not trip\n", id.c_str());
    for (const lint::Finding& f : findings)
      if (expect.count(f.rule) == 0)
        std::fprintf(stdout, "  unexpected %s:%d: %s: %s\n", f.file.c_str(),
                     f.line, f.rule.c_str(), f.message.c_str());
  }

  // Corpus coverage: every registered rule must trip at least once, so
  // a rule can never silently rot into a no-op.
  for (const lint::Rule& rule : lint::rules()) {
    if (tripped_anywhere.count(rule.id) != 0) continue;
    ++failures;
    std::fprintf(stdout, "FAIL corpus: rule %s never tripped\n", rule.id);
  }

  std::fprintf(stdout, "p8lint fixtures: %zu fixture(s), %d failure(s)\n",
               fixtures.size(), failures);
  return failures == 0 ? 0 : 1;
}

int run_rules() {
  for (const lint::Rule& rule : lint::rules())
    std::fprintf(stdout, "%-24s %s\n", rule.id, rule.summary);
  std::fprintf(stdout, "%zu rules\n", lint::rules().size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage(stderr);
    return 2;
  }
  std::string cmd = argv[1];
  while (!cmd.empty() && cmd[0] == '-') cmd.erase(0, 1);  // --gate alias

  // Split operands (files) from --flags so ArgParser sees flags only.
  std::vector<std::string> operand_storage;
  std::vector<const char*> flag_argv = {argv[0]};
  for (int i = 2; i < argc; ++i) {
    if (argv[i][0] == '-' && argv[i][1] == '-') {
      flag_argv.push_back(argv[i]);
    } else {
      operand_storage.push_back(argv[i]);
    }
  }
  common::ArgParser args(static_cast<int>(flag_argv.size()),
                         flag_argv.data());

  int rc = 2;
  if (cmd == "gate") {
    rc = run_gate(args);
  } else if (cmd == "check") {
    rc = run_check(args, operand_storage);
  } else if (cmd == "fixtures") {
    rc = run_fixtures(args);
  } else if (cmd == "rules") {
    rc = run_rules();
  } else if (cmd == "help") {
    usage(stdout);
    return 0;
  } else {
    std::fprintf(stderr, "p8lint: unknown command '%s'\n", argv[1]);
    usage(stderr);
    return 2;
  }
  if (rc == 2 && !args.unknown_args().empty()) {
    for (const std::string& unknown : args.unknown_args()) {
      std::fprintf(stderr, "p8lint: unknown option --%s", unknown.c_str());
      const std::string hint = args.suggest(unknown);
      if (!hint.empty()) std::fprintf(stderr, " (did you mean --%s?)",
                                      hint.c_str());
      std::fputc('\n', stderr);
    }
  }
  return rc;
}
