// p8serve — the persistent sweep-as-a-service daemon and its client
// (src/serve, protocol in docs/SERVE.md).
//
//   p8serve serve    --socket=PATH [--cache-capacity=N]
//                    [--machine-capacity=N] [--sim-threads=N]
//                    [--max-line-bytes=N] [--perturb=X]
//   p8serve query    --socket=PATH --machine=M --kind=K [query options]
//   p8serve request  --socket=PATH [--line=JSON]   (no --line: stdin)
//   p8serve stats    --socket=PATH
//   p8serve ping     --socket=PATH
//   p8serve shutdown --socket=PATH
//
// `serve` runs the daemon in the foreground until a "shutdown"
// request (or SIGINT/SIGTERM) arrives, then drains and removes the
// socket.  `query` builds a single-query request from flags and
// fails (exit 1) when the daemon answers with an error.  `request`
// is the raw escape hatch: it ships the given line — or every stdin
// line over one connection — verbatim and prints the response(s),
// exiting 0 whenever the transport worked, whatever the daemon said;
// hostile-input tests and the tier1 smoke cycle are built on it.
// `--perturb` skews every cached value by X (the bench_serve gate's
// WILL_FAIL twin uses it to prove the identity check has teeth).
// Exit codes: 0 ok, 1 daemon/transport error, 2 usage error.
#include <signal.h>

#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <thread>

#include "common/cli.hpp"
#include "common/json.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"

namespace {

using namespace p8;

void usage(std::FILE* to) {
  std::fputs(
      "usage: p8serve <serve|query|request|stats|ping|shutdown> [options]\n"
      "  serve    --socket=PATH [--cache-capacity=N] [--machine-capacity=N]\n"
      "           [--sim-threads=N] [--max-line-bytes=N] [--perturb=X]\n"
      "  query    --socket=PATH --machine=M --kind=K [--footprint=BYTES]\n"
      "           [--page=BYTES] [--dscr=N] [--pattern=P] [--stride=LINES]\n"
      "           [--consumer-chip=N] [--home-chip=N] [--read=X] "
      "[--write=X]\n"
      "           [--chips=N] [--cores=N] [--threads=N] [--streams=N] "
      "[--id=N]\n"
      "  request  --socket=PATH [--line=JSON]   (without --line: one\n"
      "           request per stdin line, all over one connection)\n"
      "  stats    --socket=PATH\n"
      "  ping     --socket=PATH\n"
      "  shutdown --socket=PATH\n"
      "kinds: chase-latency stream-latency stream-bandwidth "
      "random-bandwidth\n"
      "       noc-latency        patterns: random forward-stride "
      "backward-stride\n",
      to);
}

// p8lint: allow(conc-volatile) sig_atomic_t is the async-signal-safe idiom
volatile sig_atomic_t g_signalled = 0;
void on_signal(int) { g_signalled = 1; }

int finish_or_usage(common::ArgParser& args) {
  if (args.help_requested()) {
    usage(stdout);
    return 0;
  }
  const std::vector<std::string> unknown = args.unknown_args();
  if (!unknown.empty()) {
    for (const std::string& name : unknown) {
      const std::string hint = args.suggest(name);
      std::fprintf(stderr, "error: unknown option --%s%s\n", name.c_str(),
                   hint.empty() ? "" : ("; did you mean --" + hint + "?")
                                           .c_str());
    }
    usage(stderr);
    return 2;
  }
  return -1;  // proceed
}

std::string socket_arg(common::ArgParser& args) {
  return args.get_string("socket", "", "daemon socket path (required)");
}

int cmd_serve(common::ArgParser& args) {
  serve::ServerOptions options;
  options.socket_path = socket_arg(args);
  options.cache_capacity = static_cast<std::size_t>(args.get_int(
      "cache-capacity", 1024, "resident simulation results (LRU beyond)"));
  options.machine_capacity = static_cast<std::size_t>(args.get_int(
      "machine-capacity", 4, "distinct machines kept warm (LRU beyond)"));
  options.sim_threads = static_cast<std::size_t>(args.get_int(
      "sim-threads", 0, "simulation pool workers (0 = hardware threads)"));
  options.max_line_bytes = static_cast<std::size_t>(args.get_int(
      "max-line-bytes", 1 << 20, "longest accepted request line"));
  options.debug_value_skew = args.get_double(
      "perturb", 0.0, "skew every cached value by this much (gate twin)");
  const int early = finish_or_usage(args);
  if (early >= 0) return early;
  if (options.socket_path.empty()) {
    std::fputs("error: --socket is required\n", stderr);
    return 2;
  }

  serve::Server server(options);
  try {
    server.start();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr, "p8serve: listening on %s\n",
               options.socket_path.c_str());

  struct sigaction sa {};
  sa.sa_handler = on_signal;
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);

  while (!server.stop_requested() && g_signalled == 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  server.stop();
  std::fputs("p8serve: stopped\n", stderr);
  return 0;
}

/// True when `response` is an {"ok": true, ...} line.  The client
/// side only needs this one bit; everything else is printed verbatim.
bool response_ok(const std::string& response) {
  return response.find("\"ok\": true") != std::string::npos;
}

int send_and_print(const std::string& socket_path, const std::string& line,
                   bool fail_on_error_response) {
  try {
    const std::string response = serve::request_once(socket_path, line);
    std::printf("%s\n", response.c_str());
    return fail_on_error_response && !response_ok(response) ? 1 : 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}

int cmd_query(common::ArgParser& args) {
  const std::string socket_path = socket_arg(args);
  const std::string machine =
      args.get_string("machine", "e870", "preset name or spec.json path");
  const std::string kind =
      args.get_string("kind", "", "query kind (required)");
  const std::int64_t footprint =
      args.get_int("footprint", 1 << 20, "chase working-set bytes");
  const std::int64_t page = args.get_int("page", 64 * 1024, "page bytes");
  const std::int64_t dscr = args.get_int("dscr", 1, "prefetch depth");
  const std::string pattern =
      args.get_string("pattern", "random", "chase access pattern");
  const std::int64_t stride = args.get_int("stride", 1, "stride in lines");
  const std::int64_t consumer_chip =
      args.get_int("consumer-chip", 0, "chip issuing the accesses");
  const std::int64_t home_chip =
      args.get_int("home-chip", 0, "chip homing the memory");
  const double read = args.get_double("read", 2.0, "read share of the mix");
  const double write =
      args.get_double("write", 1.0, "write share of the mix");
  const std::int64_t chips = args.get_int("chips", 1, "active chips");
  const std::int64_t cores = args.get_int("cores", 1, "cores per chip");
  const std::int64_t threads =
      args.get_int("threads", 1, "SMT threads per core");
  const std::int64_t streams =
      args.get_int("streams", 1, "concurrent random streams");
  const std::int64_t id = args.get_int("id", -1, "correlation id (-1: none)");
  const int early = finish_or_usage(args);
  if (early >= 0) return early;
  if (socket_path.empty() || kind.empty()) {
    std::fputs("error: --socket and --kind are required\n", stderr);
    return 2;
  }

  std::string line = "{\"verb\": \"query\"";
  if (id >= 0) line += ", \"id\": " + std::to_string(id);
  // --machine accepts what the benches accept: a registry preset name
  // travels as a string, a .json path is loaded and sent inline.
  if (common::iends_with(machine, ".json")) {
    try {
      line += ", \"machine\": " +
              common::json_dump(common::Json::parse(
                  [&] {
                    std::FILE* f = std::fopen(machine.c_str(), "rb");
                    if (f == nullptr)
                      throw std::runtime_error("cannot open " + machine);
                    std::string text;
                    char buf[4096];
                    std::size_t n;
                    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
                      text.append(buf, n);
                    std::fclose(f);
                    return text;
                  }()));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
  } else {
    line += ", \"machine\": " + common::json_quote(machine);
  }
  line += ", \"query\": {\"kind\": " + common::json_quote(kind);
  line += ", \"footprint_bytes\": " + std::to_string(footprint);
  line += ", \"page_bytes\": " + std::to_string(page);
  line += ", \"dscr\": " + std::to_string(dscr);
  line += ", \"pattern\": " + common::json_quote(pattern);
  line += ", \"stride_lines\": " + std::to_string(stride);
  line += ", \"consumer_chip\": " + std::to_string(consumer_chip);
  line += ", \"home_chip\": " + std::to_string(home_chip);
  line += ", \"read\": " + common::json_number(read);
  line += ", \"write\": " + common::json_number(write);
  line += ", \"chips\": " + std::to_string(chips);
  line += ", \"cores\": " + std::to_string(cores);
  line += ", \"threads\": " + std::to_string(threads);
  line += ", \"streams\": " + std::to_string(streams);
  line += "}}";
  return send_and_print(socket_path, line, /*fail_on_error_response=*/true);
}

int cmd_request(common::ArgParser& args) {
  const std::string socket_path = socket_arg(args);
  const std::string line =
      args.get_string("line", "", "raw request line (default: stdin)");
  const int early = finish_or_usage(args);
  if (early >= 0) return early;
  if (socket_path.empty()) {
    std::fputs("error: --socket is required\n", stderr);
    return 2;
  }
  if (!line.empty())
    return send_and_print(socket_path, line,
                          /*fail_on_error_response=*/false);
  try {
    serve::Client client(socket_path);
    std::string in;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, stdin)) > 0) in.append(buf, n);
    std::size_t start = 0;
    while (start < in.size()) {
      std::size_t nl = in.find('\n', start);
      if (nl == std::string::npos) nl = in.size();
      const std::string one = in.substr(start, nl - start);
      start = nl + 1;
      if (one.empty()) continue;
      std::printf("%s\n", client.request(one).c_str());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}

int cmd_admin(common::ArgParser& args, const std::string& verb) {
  const std::string socket_path = socket_arg(args);
  const int early = finish_or_usage(args);
  if (early >= 0) return early;
  if (socket_path.empty()) {
    std::fputs("error: --socket is required\n", stderr);
    return 2;
  }
  return send_and_print(socket_path,
                        "{\"verb\": " + common::json_quote(verb) + "}",
                        /*fail_on_error_response=*/true);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage(stderr);
    return 2;
  }
  const std::string cmd = argv[1];
  if (cmd == "--help" || cmd == "-h" || cmd == "help") {
    usage(stdout);
    return 0;
  }
  common::ArgParser args(argc - 1, argv + 1);
  if (cmd == "serve") return cmd_serve(args);
  if (cmd == "query") return cmd_query(args);
  if (cmd == "request") return cmd_request(args);
  if (cmd == "stats") return cmd_admin(args, "stats");
  if (cmd == "ping") return cmd_admin(args, "ping");
  if (cmd == "shutdown") return cmd_admin(args, "shutdown");
  std::fprintf(stderr, "error: unknown command '%s'\n", cmd.c_str());
  usage(stderr);
  return 2;
}
