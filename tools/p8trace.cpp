// p8trace — record and replay binary access traces (src/trace).
//
//   p8trace record --workload=seq-scan --out=seq.p8t [--machine=e870]
//                  [--accesses=N] [--chunk-records=N]
//   p8trace replay --in=seq.p8t --workload=seq-scan [--machine=e870]
//                  [--counters=path] [--json=path] [--mmap] [--no-verify]
//   p8trace run    --workload=seq-scan [--machine=e870] [--counters=path]
//                  [--json=path] [--accesses=N]
//   p8trace info   --in=seq.p8t [--json=path]
//
//   p8trace diff   <report_a.json> <report_b.json>
//
// `record` streams a registered workload generator into a TraceWriter
// — the trace never materializes in memory, so files much larger than
// RAM are fine.  `replay` streams the file back through the probe one
// chunk at a time (peak RSS bounded by the chunk size) and reports the
// same windows the live driver measures, bit for bit.  `run` is the
// in-memory reference: generator straight into the probe, no file —
// diffing its counters against `replay`'s is the fidelity check
// scripts/tier1.sh performs.  `diff` compares two --json reports
// key by key (ignoring the fields expected to differ between a replay
// and its reference run: mode, trace path, peak RSS) and lists every
// mismatch — the replay-vs-run identity check, in the tool itself
// instead of an ad-hoc script.  Exit codes: 0 ok, 1 trace/simulation
// error or report mismatch, 2 usage error.
#include <sys/resource.h>

#include <cinttypes>
#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "common/json.hpp"
#include "sim/counters.hpp"
#include "sim/machine/machine.hpp"
#include "sim/machine/spec.hpp"
#include "trace/reader.hpp"
#include "trace/replay.hpp"
#include "trace/trace.hpp"
#include "trace/writer.hpp"
#include "ubench/workloads.hpp"

namespace {

using namespace p8;

long max_rss_kb() {
  struct rusage ru {};
  getrusage(RUSAGE_SELF, &ru);
  return ru.ru_maxrss;  // KiB on Linux
}

void usage(std::FILE* to) {
  std::fputs(
      "usage: p8trace <record|replay|run|info> [options]\n"
      "  record --workload=W --out=FILE [--machine=M] [--accesses=N]\n"
      "         [--chunk-records=N]\n"
      "  replay --in=FILE --workload=W [--machine=M] [--counters=PATH]\n"
      "         [--json=PATH] [--mmap] [--no-verify]\n"
      "  run    --workload=W [--machine=M] [--accesses=N] [--counters=PATH]\n"
      "         [--json=PATH]\n"
      "  info   --in=FILE [--json=PATH]\n"
      "  diff   REPORT_A.json REPORT_B.json\n"
      "workloads:\n",
      to);
  for (const auto& w : ubench::trace_workloads())
    std::fprintf(to, "  %-10s %s\n", w.name.c_str(), w.description.c_str());
}

const ubench::TraceWorkload* resolve_workload(const std::string& name) {
  if (name.empty()) {
    std::fputs("error: --workload is required\n", stderr);
    return nullptr;
  }
  const ubench::TraceWorkload* w = ubench::find_trace_workload(name);
  if (w == nullptr) {
    std::fprintf(stderr, "error: unknown workload '%s'\n", name.c_str());
    usage(stderr);
  }
  return w;
}

/// Shared outcome reporting for replay/run: summary table on stdout,
/// optional machine-readable JSON, optional counter dump.
int report(const std::string& mode, const std::string& machine_sel,
           const std::string& workload, const std::string& trace_path,
           const sim::BatchStats& stats,
           const std::vector<trace::ChunkedReplayer::Mark>& marks,
           double now_ns, const sim::CounterRegistry* registry,
           const std::string& counters_path, const std::string& json_path) {
  std::printf("%s: %s on %s\n", mode.c_str(), workload.c_str(),
              machine_sel.c_str());
  if (!trace_path.empty()) std::printf("trace: %s\n", trace_path.c_str());
  std::printf("accesses: %" PRIu64 "\n", stats.accesses);
  std::printf("busy_ns: %.6f\n", stats.busy_ns);
  std::printf("l1_fast_hits: %" PRIu64 "\n", stats.l1_fast_hits);
  std::printf("prefetched_hits: %" PRIu64 "\n", stats.prefetched_hits);
  double window_ns = 0.0;
  std::uint64_t window_accesses = 0;
  for (const auto& m : marks)
    if (m.id == ubench::kMarkMeasureStart) {
      window_ns = now_ns - m.now_ns;
      window_accesses = stats.accesses - m.accesses;
      break;
    }
  if (window_accesses != 0)
    std::printf("measure window: %" PRIu64 " accesses, %.6f ns/access\n",
                window_accesses, window_ns / static_cast<double>(window_accesses));
  std::printf("max_rss_kb: %ld\n", max_rss_kb());

  if (registry != nullptr &&
      !bench::write_counters(*registry, counters_path, "p8trace"))
    return 1;

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"tool\": \"p8trace\",\n"
                 "  \"mode\": \"%s\",\n"
                 "  \"machine\": \"%s\",\n"
                 "  \"workload\": \"%s\",\n"
                 "  \"trace\": \"%s\",\n"
                 "  \"accesses\": %" PRIu64 ",\n"
                 "  \"l1_fast_hits\": %" PRIu64 ",\n"
                 "  \"prefetched_hits\": %" PRIu64 ",\n"
                 "  \"busy_ns\": %.6f,\n"
                 "  \"now_ns\": %.6f,\n"
                 "  \"window_accesses\": %" PRIu64 ",\n"
                 "  \"window_ns\": %.6f,\n"
                 "  \"max_rss_kb\": %ld\n"
                 "}\n",
                 mode.c_str(), machine_sel.c_str(), workload.c_str(),
                 trace_path.c_str(), stats.accesses, stats.l1_fast_hits,
                 stats.prefetched_hits, stats.busy_ns, now_ns,
                 window_accesses, window_ns, max_rss_kb());
    std::fclose(f);
    std::printf("JSON written to %s\n", json_path.c_str());
  }
  return 0;
}

int cmd_record(common::ArgParser& args) {
  const std::string workload_name =
      args.get_string("workload", "", "workload to record (see usage)");
  const std::string out = args.get_string("out", "", "trace file to write");
  const std::string machine_sel = bench::machine_arg(args);
  const auto accesses = bench::bounded_int_arg(
      args, "accesses", 0, 0, std::int64_t{1} << 40,
      "scale the workload to ~N accesses (0 = workload default)");
  const auto chunk_records = bench::bounded_int_arg(
      args, "chunk-records", trace::kDefaultChunkRecords, 1,
      std::int64_t{1} << 31, "records per trace chunk");
  if (auto exit_code = bench::finish_args(args)) return *exit_code;
  if (!accesses || !chunk_records) return 2;
  const ubench::TraceWorkload* w = resolve_workload(workload_name);
  if (w == nullptr) return 2;
  if (out.empty()) {
    std::fputs("error: --out is required\n", stderr);
    return 2;
  }
  const auto machine_spec = bench::load_machine(machine_sel);
  if (!machine_spec) return 2;
  const sim::Machine machine = machine_spec->machine();

  trace::WriterOptions options;
  options.chunk_records = static_cast<std::uint32_t>(*chunk_records);
  try {
    trace::TraceWriter writer(out, options);
    w->emit(machine, static_cast<std::uint64_t>(*accesses), writer);
    writer.finish();
    std::printf("recorded %" PRIu64 " records (%" PRIu64
                " accesses) in %" PRIu64 " chunks, %" PRIu64 " bytes -> %s\n",
                writer.records(), writer.accesses(), writer.chunks(),
                writer.bytes(), out.c_str());
    std::printf("max_rss_kb: %ld\n", max_rss_kb());
  } catch (const trace::TraceError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}

int cmd_replay(common::ArgParser& args) {
  const std::string in = args.get_string("in", "", "trace file to replay");
  const std::string workload_name = args.get_string(
      "workload", "", "workload the trace was recorded from (probe config)");
  const std::string machine_sel = bench::machine_arg(args);
  const std::string counters_path = bench::counters_path_arg(args);
  const std::string json_path =
      args.get_string("json", "", "machine-readable output file");
  const bool use_mmap = args.get_flag("mmap", "mmap the trace file");
  const bool no_verify =
      args.get_flag("no-verify", "skip the footer checksum pass");
  if (auto exit_code = bench::finish_args(args)) return *exit_code;
  if (in.empty()) {
    std::fputs("error: --in is required\n", stderr);
    return 2;
  }
  const ubench::TraceWorkload* w = resolve_workload(workload_name);
  if (w == nullptr) return 2;
  const auto machine_spec = bench::load_machine(machine_sel);
  if (!machine_spec) return 2;
  const sim::Machine machine = machine_spec->machine();

  sim::CounterRegistry registry;
  sim::ProbeOptions probe_options = w->probe_options;
  if (!counters_path.empty()) probe_options.counters = &registry;

  try {
    trace::ReaderOptions options;
    options.use_mmap = use_mmap;
    options.verify_checksum = !no_verify;
    trace::TraceReader reader(in, options);
    sim::LatencyProbe probe = machine.probe(probe_options);
    const trace::ReplayResult result = trace::replay_trace(reader, probe);
    return report("replay", machine_sel, w->name, in, result.stats,
                  result.marks, probe.now_ns(),
                  counters_path.empty() ? nullptr : &registry, counters_path,
                  json_path);
  } catch (const trace::TraceError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}

int cmd_run(common::ArgParser& args) {
  const std::string workload_name =
      args.get_string("workload", "", "workload to simulate (see usage)");
  const std::string machine_sel = bench::machine_arg(args);
  const std::string counters_path = bench::counters_path_arg(args);
  const std::string json_path =
      args.get_string("json", "", "machine-readable output file");
  const auto accesses = bench::bounded_int_arg(
      args, "accesses", 0, 0, std::int64_t{1} << 40,
      "scale the workload to ~N accesses (0 = workload default)");
  if (auto exit_code = bench::finish_args(args)) return *exit_code;
  if (!accesses) return 2;
  const ubench::TraceWorkload* w = resolve_workload(workload_name);
  if (w == nullptr) return 2;
  const auto machine_spec = bench::load_machine(machine_sel);
  if (!machine_spec) return 2;
  const sim::Machine machine = machine_spec->machine();

  sim::CounterRegistry registry;
  sim::ProbeOptions probe_options = w->probe_options;
  if (!counters_path.empty()) probe_options.counters = &registry;

  sim::LatencyProbe probe = machine.probe(probe_options);
  trace::ChunkedReplayer sink(probe);
  w->emit(machine, static_cast<std::uint64_t>(*accesses), sink);
  sink.flush();
  return report("run", machine_sel, w->name, "", sink.stats(), sink.marks(),
                probe.now_ns(), counters_path.empty() ? nullptr : &registry,
                counters_path, json_path);
}

int cmd_info(common::ArgParser& args) {
  const std::string in = args.get_string("in", "", "trace file to inspect");
  const std::string json_path =
      args.get_string("json", "", "machine-readable output file");
  if (auto exit_code = bench::finish_args(args)) return *exit_code;
  if (in.empty()) {
    std::fputs("error: --in is required\n", stderr);
    return 2;
  }
  try {
    trace::TraceReader reader(in);
    std::printf("%s: valid P8TRACE v%u\n", in.c_str(), trace::kVersion);
    std::printf("records: %" PRIu64 "\n", reader.total_records());
    std::printf("accesses: %" PRIu64 "\n", reader.total_accesses());
    std::printf("chunks: %" PRIu64 " (%u records/chunk)\n",
                reader.chunk_count(), reader.chunk_records());
    std::printf("file_bytes: %" PRIu64 "\n", reader.file_bytes());
    if (!json_path.empty()) {
      std::FILE* f = std::fopen(json_path.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "error: cannot write %s\n", json_path.c_str());
        return 1;
      }
      std::fprintf(f,
                   "{\n"
                   "  \"tool\": \"p8trace\",\n"
                   "  \"mode\": \"info\",\n"
                   "  \"trace\": \"%s\",\n"
                   "  \"version\": %u,\n"
                   "  \"records\": %" PRIu64 ",\n"
                   "  \"accesses\": %" PRIu64 ",\n"
                   "  \"chunks\": %" PRIu64 ",\n"
                   "  \"chunk_records\": %u,\n"
                   "  \"file_bytes\": %" PRIu64 "\n"
                   "}\n",
                   in.c_str(), trace::kVersion, reader.total_records(),
                   reader.total_accesses(), reader.chunk_count(),
                   reader.chunk_records(), reader.file_bytes());
      std::fclose(f);
    }
  } catch (const trace::TraceError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}

// ---- diff -----------------------------------------------------------------

/// Keys expected to differ between a replay report and its in-memory
/// reference run: the mode tag, the trace path (empty for `run`) and
/// the wall-clock peak RSS.
bool diff_ignored_key(const std::string& key) {
  return key == "mode" || key == "trace" || key == "max_rss_kb";
}

std::string render_value(const common::Json& v) {
  switch (v.kind) {
    case common::Json::Kind::kNull:
      return "null";
    case common::Json::Kind::kBool:
      return v.boolean ? "true" : "false";
    case common::Json::Kind::kNumber:
      return common::json_number(v.number);
    case common::Json::Kind::kString:
      return common::json_quote(v.string);
    case common::Json::Kind::kArray:
      return "<array>";
    case common::Json::Kind::kObject:
      return "<object>";
  }
  return "<?>";
}

bool json_equal(const common::Json& a, const common::Json& b) {
  if (a.kind != b.kind) return false;
  switch (a.kind) {
    case common::Json::Kind::kNull:
      return true;
    case common::Json::Kind::kBool:
      return a.boolean == b.boolean;
    case common::Json::Kind::kNumber:
      return a.number == b.number;  // same text parses to the same double
    case common::Json::Kind::kString:
      return a.string == b.string;
    case common::Json::Kind::kArray: {
      if (a.array.size() != b.array.size()) return false;
      for (std::size_t i = 0; i < a.array.size(); ++i)
        if (!json_equal(a.array[i], b.array[i])) return false;
      return true;
    }
    case common::Json::Kind::kObject: {
      if (a.object.size() != b.object.size()) return false;
      for (const auto& [key, value] : a.object) {
        const common::Json* other = b.find(key);
        if (other == nullptr || !json_equal(value, *other)) return false;
      }
      return true;
    }
  }
  return false;
}

bool read_file(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out->append(buf, n);
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

int cmd_diff(int argc, char** argv) {
  if (argc != 2) {
    std::fputs("error: diff takes exactly two report files\n", stderr);
    usage(stderr);
    return 2;
  }
  const std::string path_a = argv[0];
  const std::string path_b = argv[1];
  common::Json a, b;
  const auto load = [](const std::string& path, common::Json* doc) {
    std::string text;
    if (!read_file(path, &text)) {
      std::fprintf(stderr, "error: cannot read %s\n", path.c_str());
      return false;
    }
    try {
      *doc = common::Json::parse(text);
    } catch (const std::invalid_argument& e) {
      std::fprintf(stderr, "error: %s: %s\n", path.c_str(), e.what());
      return false;
    }
    if (!doc->is_object()) {
      std::fprintf(stderr, "error: %s: not a JSON object\n", path.c_str());
      return false;
    }
    return true;
  };
  if (!load(path_a, &a) || !load(path_b, &b)) return 1;

  int mismatches = 0;
  std::size_t compared = 0;
  for (const auto& [key, value] : a.object) {
    if (diff_ignored_key(key)) continue;
    const common::Json* other = b.find(key);
    if (other == nullptr) {
      std::printf("DIFF %-16s %s vs <absent>\n", key.c_str(),
                  render_value(value).c_str());
      ++mismatches;
      continue;
    }
    ++compared;
    if (!json_equal(value, *other)) {
      std::printf("DIFF %-16s %s vs %s\n", key.c_str(),
                  render_value(value).c_str(), render_value(*other).c_str());
      ++mismatches;
    }
  }
  for (const auto& [key, value] : b.object) {
    if (diff_ignored_key(key) || a.find(key) != nullptr) continue;
    std::printf("DIFF %-16s <absent> vs %s\n", key.c_str(),
                render_value(value).c_str());
    ++mismatches;
  }

  if (mismatches != 0) {
    std::printf("diff: %d mismatched key%s between %s and %s\n", mismatches,
                mismatches == 1 ? "" : "s", path_a.c_str(), path_b.c_str());
    return 1;
  }
  std::printf("diff: reports identical on %zu keys\n", compared);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage(stderr);
    return 2;
  }
  const std::string cmd = argv[1];
  if (cmd == "--help" || cmd == "-h" || cmd == "help") {
    usage(stdout);
    return 0;
  }
  // `diff` is purely positional; every other subcommand hands the rest
  // of the line to ArgParser.
  if (cmd == "diff") return cmd_diff(argc - 2, argv + 2);
  common::ArgParser args(argc - 1, argv + 1);
  if (cmd == "record") return cmd_record(args);
  if (cmd == "replay") return cmd_replay(args);
  if (cmd == "run") return cmd_run(args);
  if (cmd == "info") return cmd_info(args);
  std::fprintf(stderr, "error: unknown command '%s'\n", cmd.c_str());
  usage(stderr);
  return 2;
}
